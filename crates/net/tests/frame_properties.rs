//! Property-based transport-safety tests: *no* corruption of the BANET
//! byte stream — bit flips, truncations, oversized length prefixes, or
//! outright garbage, at any offset — may ever panic the frame reader or
//! desynchronize it past a corrupt frame. Every mangled input must come
//! back as a clean [`FrameError`]; the absence of a panic (and of a
//! silently-wrong decode) is the property under test.
//!
//! A pristine multi-message stream is built once; each case mutates its
//! own private copy and feeds it through [`FrameReader`] over an in-memory
//! reader, exactly as the TCP path does.

use banet::frame::{decode_frame, write_magic, write_message};
use banet::{FrameError, FrameReader, Hello, Message, ReplyOutcome, Role, MAX_FRAME_LEN};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Every message shape on the wire, as one encoded stream (magic first,
/// as the handshake writes it).
fn pristine() -> &'static Vec<u8> {
    static PRISTINE: OnceLock<Vec<u8>> = OnceLock::new();
    PRISTINE.get_or_init(|| {
        let mut buf = Vec::new();
        write_magic(&mut buf).unwrap();
        let messages = [
            Message::Hello(Hello {
                role: Role::Worker,
                shard_index: 3,
                shard_count: 8,
                hash_version: 1,
            }),
            Message::Classify {
                req_id: 1,
                address: 0xdead_beef,
            },
            Message::Reply {
                req_id: 1,
                outcome: ReplyOutcome::Ok {
                    label_index: 2,
                    cache_hit: true,
                    degraded: false,
                    latency_us: 1234,
                },
            },
            Message::Reply {
                req_id: 2,
                outcome: ReplyOutcome::Reject("shard 1 does not own address 7".into()),
            },
            Message::MetricsReq { req_id: 3 },
            Message::MetricsReply {
                req_id: 3,
                json: "{\"completed\":4}".into(),
            },
            Message::Ping { nonce: 99 },
            Message::Pong {
                nonce: 99,
                processed: 42,
            },
            Message::Invalidate {
                req_id: 4,
                address: 17,
            },
            Message::InvalidateReply {
                req_id: 4,
                generation: 5,
            },
            Message::Shutdown,
        ];
        for m in &messages {
            write_message(&mut buf, m).unwrap();
        }
        buf
    })
}

fn flip_bit(bytes: &mut [u8], bit: u64) {
    if bytes.is_empty() {
        return;
    }
    let at = (bit % (bytes.len() as u64 * 8)) as usize;
    bytes[at / 8] ^= 1 << (at % 8);
}

/// Drain a mangled stream through the reader: every outcome must be a
/// clean decode, a descriptive error, or EOF — never a panic, and never
/// an unbounded loop (the reader either progresses or poisons).
fn reader_survives(bytes: Vec<u8>) {
    let mut reader = FrameReader::new(std::io::Cursor::new(bytes));
    for _ in 0..1024 {
        match reader.read_message() {
            Ok(Some(_)) => {}
            Ok(None) => return, // clean EOF at a frame boundary
            Err(e) => {
                // Errors must be descriptive, never silent.
                assert!(!e.to_string().is_empty());
                return;
            }
        }
    }
    panic!("reader neither drained nor failed after 1024 frames");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // A single flipped bit anywhere in the stream: the CRC (or the magic
    // check, or the payload parser) must catch it cleanly.
    #[test]
    fn bit_flips_never_panic_or_desync(bit in any::<u64>()) {
        let mut bytes = pristine().clone();
        flip_bit(&mut bytes, bit);
        reader_survives(bytes);
    }

    // Truncation at any byte — a torn send, a killed peer. A cut at a
    // frame boundary is a clean EOF; mid-frame is `Truncated`.
    #[test]
    fn truncations_never_panic(cut in any::<u64>()) {
        let mut bytes = pristine().clone();
        let keep = (cut % (bytes.len() as u64 + 1)) as usize;
        bytes.truncate(keep);
        reader_survives(bytes);
    }

    // Arbitrary garbage, with and without a valid magic in front: the
    // reader must reject without allocating for absurd length prefixes.
    #[test]
    fn garbage_never_panics(
        garbage in proptest::collection::vec(any::<u8>(), 0..256),
        with_magic in any::<bool>(),
    ) {
        let mut bytes = Vec::new();
        if with_magic {
            write_magic(&mut bytes).unwrap();
        }
        bytes.extend_from_slice(&garbage);
        reader_survives(bytes);
    }

    // An oversized length prefix must be refused before any allocation,
    // whatever the claimed size.
    #[test]
    fn oversized_lengths_are_rejected_without_allocation(
        extra in 1u32..=u32::MAX - MAX_FRAME_LEN,
    ) {
        let claimed = MAX_FRAME_LEN + extra;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&claimed.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        match decode_frame(&bytes) {
            Err(FrameError::TooLarge(n)) => prop_assert_eq!(n, claimed),
            other => prop_assert!(false, "expected TooLarge, got {:?}", other.map(|_| ())),
        }
    }

    // Round-trip: whatever classify/reply payload we encode comes back
    // bit-identical through the framed path, even split across arbitrary
    // chunk sizes (short reads never desync the reader).
    #[test]
    fn classify_roundtrips_through_any_chunking(
        req_id in any::<u64>(),
        address in any::<u64>(),
        chunk in 1usize..16,
    ) {
        let msg = Message::Classify { req_id, address };
        let mut bytes = Vec::new();
        write_magic(&mut bytes).unwrap();
        write_message(&mut bytes, &msg).unwrap();

        struct Chunked {
            bytes: Vec<u8>,
            at: usize,
            chunk: usize,
        }
        impl std::io::Read for Chunked {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = self.chunk.min(buf.len()).min(self.bytes.len() - self.at);
                buf[..n].copy_from_slice(&self.bytes[self.at..self.at + n]);
                self.at += n;
                Ok(n)
            }
        }
        let mut reader = FrameReader::new(Chunked { bytes, at: 0, chunk });
        let got = reader.read_message().unwrap().expect("one frame in");
        prop_assert_eq!(got, msg);
        prop_assert!(reader.read_message().unwrap().is_none());
    }

    // A frame whose payload is valid except for trailing junk must be
    // `Malformed`, not silently accepted.
    #[test]
    fn trailing_payload_junk_is_malformed(junk in proptest::collection::vec(any::<u8>(), 1..32)) {
        let mut payload = Message::Ping { nonce: 7 }.encode();
        payload.extend_from_slice(&junk);
        let mut framed = Vec::new();
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&bstream::crc32(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        match decode_frame(&framed) {
            Err(FrameError::Malformed(_)) => {}
            other => prop_assert!(false, "expected Malformed, got {:?}", other.map(|_| ())),
        }
    }
}
