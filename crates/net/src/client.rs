//! The remote shard lane: a `ShardLane` whose engine lives in another
//! process, reached over one multiplexed BANET connection.
//!
//! One [`RemoteShard`] serves one shard worker address. Requests are
//! tagged with `req_id`s and settle out of order on the wire, so a single
//! connection carries the whole in-flight window (bounded by
//! `max_in_flight` — the per-shard admission budget; excess submits fail
//! fast with `QueueFull`, exactly like a full engine queue, so the router
//! above can shed or degrade instead of stalling the fleet).
//!
//! Failure handling is the point of this module:
//!
//! * **Fail-fast submits.** `submit` never dials. If the connection is
//!   down it returns `WorkerFailed` immediately and the router's degraded
//!   path takes over. Dialing is the prober thread's job.
//! * **Bounded-backoff reconnect.** Connection attempts are gated by an
//!   exponential backoff (`backoff` doubling to `backoff_max`), driven by
//!   the prober every `probe_interval`.
//! * **Client-side deadlines.** Every pending request carries a deadline;
//!   the reader thread sweeps expired entries on its poll tick and settles
//!   them `DeadlineExceeded`, so a wedged worker never hangs a caller.
//! * **Health feedback.** Connection state and `Pong` progress beats flow
//!   into a [`HealthSink`] — `bashard` wires this to its `ShardHealth`
//!   board, so degraded routing sees remote workers exactly like
//!   in-process engines.
//!
//! The handshake validates layout: the server's `Hello` must carry our
//! `SHARD_HASH_VERSION`, and when `expect` names a shard assignment the
//! peer must be the worker serving exactly that `index`/`count` — a
//! frontend misconfigured onto the wrong worker refuses to pair up rather
//! than silently misroute addresses.

use crate::frame::{write_magic, write_message, FrameReader, Hello, Message, ReplyOutcome, Role};
use baclassifier::{PredictError, ShardAssignment, SHARD_HASH_VERSION};
use baserve::metrics::{Metrics, MetricsSnapshot};
use baserve::{Response, ServeError, ShardLane, Ticket};
use btcsim::{Address, AddressRecord, Label};
use std::collections::HashMap;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Where a remote lane reports its connection state and progress. The
/// callbacks must be cheap and non-blocking (atomic stores).
#[derive(Clone)]
pub struct HealthSink {
    /// Called with `true` on (re)connect, `false` on disconnect.
    pub mark: Arc<dyn Fn(bool) + Send + Sync>,
    /// Called with the worker's processed-request count on every pong.
    pub beat: Arc<dyn Fn(u64) + Send + Sync>,
}

impl HealthSink {
    /// A sink that ignores everything (tests, loadgen).
    pub fn noop() -> HealthSink {
        HealthSink {
            mark: Arc::new(|_| {}),
            beat: Arc::new(|_| {}),
        }
    }
}

/// Knobs for a [`RemoteShard`].
#[derive(Clone)]
pub struct RemoteShardConfig {
    pub connect_timeout: Duration,
    /// Default per-request deadline when the caller supplies none.
    pub request_timeout: Duration,
    /// Initial reconnect backoff; doubles per failure up to `backoff_max`.
    pub backoff: Duration,
    pub backoff_max: Duration,
    /// Per-shard admission budget: in-flight requests beyond this fail
    /// fast with `QueueFull`.
    pub max_in_flight: usize,
    pub probe_interval: Duration,
    /// Reader poll tick (also the deadline-sweep cadence).
    pub read_tick: Duration,
    /// A connection with no frames heard for this long is declared dead.
    pub stale_after: Duration,
    /// When set, the peer must be the worker for exactly this assignment.
    pub expect: Option<ShardAssignment>,
    pub write_timeout: Duration,
}

impl Default for RemoteShardConfig {
    fn default() -> Self {
        RemoteShardConfig {
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(5),
            backoff: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            max_in_flight: 64,
            probe_interval: Duration::from_millis(100),
            read_tick: Duration::from_millis(25),
            stale_after: Duration::from_secs(2),
            expect: None,
            write_timeout: Duration::from_secs(5),
        }
    }
}

enum PendingReply {
    Classify(mpsc::SyncSender<Result<Response, ServeError>>),
    Metrics(mpsc::SyncSender<String>),
    Invalidate(mpsc::SyncSender<u64>),
}

struct PendingEntry {
    reply: PendingReply,
    deadline: Instant,
}

struct Conn {
    write: TcpStream,
    generation: u64,
}

struct Inner {
    conn: Option<Conn>,
    pending: HashMap<u64, PendingEntry>,
    next_req_id: u64,
    /// Bumped per established connection; a stale reader thread (from a
    /// torn-down connection) compares generations and must never touch
    /// state a newer connection owns.
    generation: u64,
    next_attempt: Instant,
    backoff: Duration,
    ever_connected: bool,
    last_heard: Instant,
}

/// A connection to one remote shard worker, presenting the same
/// [`ShardLane`] surface as an in-process engine.
pub struct RemoteShard {
    addr: String,
    config: RemoteShardConfig,
    health: HealthSink,
    metrics: Arc<Metrics>,
    inner: Arc<Mutex<Inner>>,
    stop: Arc<AtomicBool>,
    prober: Option<std::thread::JoinHandle<()>>,
}

fn lock<'a>(m: &'a Mutex<Inner>) -> MutexGuard<'a, Inner> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Translate a wire outcome back to the engine result surface. A
/// `Reject` (unknown address, ownership violation) maps to `WorkerFailed`
/// at this boundary: to the router it is indistinguishable from a lane
/// that cannot serve the request.
fn result_of(outcome: ReplyOutcome) -> Result<Response, ServeError> {
    match outcome {
        ReplyOutcome::Ok {
            label_index,
            cache_hit,
            degraded,
            latency_us,
        } => match Label::from_index(label_index as usize) {
            Some(label) => Ok(Response {
                label,
                cache_hit,
                degraded,
                latency: Duration::from_micros(latency_us),
            }),
            None => Err(ServeError::WorkerFailed),
        },
        ReplyOutcome::QueueFull => Err(ServeError::QueueFull),
        ReplyOutcome::ShuttingDown => Err(ServeError::ShuttingDown),
        ReplyOutcome::NotFitted => Err(ServeError::Predict(PredictError::NotFitted)),
        ReplyOutcome::EmptyHistory => Err(ServeError::Predict(PredictError::EmptyHistory)),
        ReplyOutcome::WorkerFailed => Err(ServeError::WorkerFailed),
        ReplyOutcome::DeadlineExceeded => Err(ServeError::DeadlineExceeded),
        ReplyOutcome::BreakerOpen => Err(ServeError::BreakerOpen),
        ReplyOutcome::Reject(_) => Err(ServeError::WorkerFailed),
    }
}

impl RemoteShard {
    /// Create a lane for the worker at `addr` and dial it once eagerly.
    /// Never fails: if the worker is down the lane starts disconnected and
    /// the prober keeps retrying under backoff. Use
    /// [`RemoteShard::wait_connected`] when startup must block on the
    /// fleet being up.
    pub fn connect(addr: &str, config: RemoteShardConfig, health: HealthSink) -> RemoteShard {
        let now = Instant::now();
        let inner = Arc::new(Mutex::new(Inner {
            conn: None,
            pending: HashMap::new(),
            next_req_id: 0,
            generation: 0,
            next_attempt: now,
            backoff: config.backoff,
            ever_connected: false,
            last_heard: now,
        }));
        let mut shard = RemoteShard {
            addr: addr.to_string(),
            config,
            health,
            metrics: Arc::new(Metrics::default()),
            inner,
            stop: Arc::new(AtomicBool::new(false)),
            prober: None,
        };
        shard.try_connect();
        shard.prober = Some(shard.spawn_prober());
        shard
    }

    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the lane currently holds a live connection.
    pub fn is_connected(&self) -> bool {
        lock(&self.inner).conn.is_some()
    }

    /// Block (polling) until connected or `timeout` elapses.
    pub fn wait_connected(&self, timeout: Duration) -> bool {
        let start = Instant::now();
        while start.elapsed() < timeout {
            if self.is_connected() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.is_connected()
    }

    fn spawn_prober(&self) -> std::thread::JoinHandle<()> {
        let inner = Arc::clone(&self.inner);
        let metrics = Arc::clone(&self.metrics);
        let health = self.health.clone();
        let stop = Arc::clone(&self.stop);
        let config = self.config.clone();
        let addr = self.addr.clone();
        std::thread::spawn(move || {
            let mut nonce = 0u64;
            while !stop.load(Relaxed) {
                std::thread::sleep(config.probe_interval);
                if stop.load(Relaxed) {
                    break;
                }
                try_connect_impl(&addr, &config, &inner, &metrics, &health, &stop);
                let mut guard = lock(&inner);
                // Second deadline sweep (the reader sweeps on its poll
                // tick, but a stream saturated with replies may never
                // tick) — a wedged individual request still expires.
                let now = Instant::now();
                let expired: Vec<u64> = guard
                    .pending
                    .iter()
                    .filter(|(_, e)| e.deadline <= now)
                    .map(|(id, _)| *id)
                    .collect();
                for id in expired {
                    if let Some(entry) = guard.pending.remove(&id) {
                        settle(entry, Err(ServeError::DeadlineExceeded), &metrics);
                    }
                }
                if let Some(conn) = &guard.conn {
                    let generation = conn.generation;
                    if guard.last_heard.elapsed() > config.stale_after {
                        // Half-open connection: the peer stopped talking
                        // but TCP never noticed. Tear it down; backoff
                        // reconnect takes over.
                        disconnect_locked(&mut guard, generation, &metrics, &health);
                        continue;
                    }
                    nonce += 1;
                    let ping = Message::Ping { nonce };
                    let mut w = &conn.write;
                    if write_message(&mut w, &ping)
                        .and_then(|_| w.flush())
                        .is_err()
                    {
                        disconnect_locked(&mut guard, generation, &metrics, &health);
                    }
                }
            }
        })
    }

    fn try_connect(&self) {
        try_connect_impl(
            &self.addr,
            &self.config,
            &self.inner,
            &self.metrics,
            &self.health,
            &self.stop,
        );
    }

    /// Fetch the server-side metrics JSON (`None` when disconnected or
    /// timed out).
    pub fn remote_metrics_json(&self) -> Option<String> {
        let (tx, rx) = mpsc::sync_channel(1);
        let deadline = Instant::now() + self.config.request_timeout;
        {
            let mut guard = lock(&self.inner);
            let req_id = guard.next_req_id;
            guard.next_req_id += 1;
            guard.pending.insert(
                req_id,
                PendingEntry {
                    reply: PendingReply::Metrics(tx),
                    deadline,
                },
            );
            if send_on_conn(&mut guard, req_id, &Message::MetricsReq { req_id }).is_err() {
                return None;
            }
        }
        rx.recv_timeout(self.config.request_timeout).ok()
    }

    /// Ask the remote server to stop (drains and exits its accept loop).
    pub fn send_shutdown(&self) -> bool {
        let mut guard = lock(&self.inner);
        let Some(conn) = &guard.conn else {
            return false;
        };
        let generation = conn.generation;
        let mut w = &conn.write;
        let sent = write_message(&mut w, &Message::Shutdown)
            .and_then(|_| w.flush())
            .is_ok();
        if sent {
            // The server closes the connection as it stops; reflect that
            // promptly rather than waiting for the reader to notice.
            disconnect_locked(&mut guard, generation, &self.metrics, &self.health);
        }
        sent
    }

    /// Stop the lane: close the connection, settle all pending requests
    /// `WorkerFailed`, join the prober.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.stop.store(true, Relaxed);
        {
            let mut guard = lock(&self.inner);
            let generation = guard.conn.as_ref().map(|c| c.generation).unwrap_or(0);
            disconnect_locked(&mut guard, generation, &self.metrics, &self.health);
            // Shutdown is not a failure; leave the board as the last real
            // transition put it.
        }
        if let Some(h) = self.prober.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RemoteShard {
    fn drop(&mut self) {
        if !self.stop.load(Relaxed) {
            self.shutdown_in_place();
        }
    }
}

/// Write a frame on the live connection, unwinding the pending entry on
/// any failure (so a dead socket never leaks a pending request).
fn send_on_conn(
    guard: &mut MutexGuard<'_, Inner>,
    req_id: u64,
    msg: &Message,
) -> Result<(), ServeError> {
    let ok = match &guard.conn {
        Some(conn) => {
            let mut w = &conn.write;
            write_message(&mut w, msg).and_then(|_| w.flush()).is_ok()
        }
        None => false,
    };
    if ok {
        Ok(())
    } else {
        guard.pending.remove(&req_id);
        Err(ServeError::WorkerFailed)
    }
}

fn try_connect_impl(
    addr: &str,
    config: &RemoteShardConfig,
    inner: &Arc<Mutex<Inner>>,
    metrics: &Arc<Metrics>,
    health: &HealthSink,
    stop: &Arc<AtomicBool>,
) {
    {
        let mut guard = lock(inner);
        if guard.conn.is_some() || stop.load(Relaxed) {
            return;
        }
        let now = Instant::now();
        if now < guard.next_attempt {
            return;
        }
        // Gate concurrent dialers out while this one is in flight.
        guard.next_attempt = now + config.connect_timeout;
    }
    match dial(addr, config) {
        Ok((stream, reader)) => {
            let mut guard = lock(inner);
            if guard.conn.is_some() || stop.load(Relaxed) {
                return; // lost the race (can't happen under the gate) or shutting down
            }
            guard.generation += 1;
            let generation = guard.generation;
            guard.conn = Some(Conn {
                write: stream,
                generation,
            });
            guard.backoff = config.backoff;
            guard.next_attempt = Instant::now();
            guard.last_heard = Instant::now();
            if guard.ever_connected {
                metrics.reconnects_total.fetch_add(1, Relaxed);
            }
            guard.ever_connected = true;
            metrics.connections_open.store(1, Relaxed);
            drop(guard);
            (health.mark)(true);
            spawn_reader(reader, generation, inner, metrics, health, stop, config);
        }
        Err(_) => {
            let mut guard = lock(inner);
            let backoff = guard.backoff;
            guard.next_attempt = Instant::now() + backoff;
            guard.backoff = (backoff * 2).min(config.backoff_max);
        }
    }
}

/// Dial, exchange magics and hellos, validate the peer's layout. Returns
/// the write half and a frame reader already past the handshake (any
/// frames the server pipelined behind its hello stay buffered in it).
fn dial(
    addr: &str,
    config: &RemoteShardConfig,
) -> Result<(TcpStream, FrameReader<TcpStream>), String> {
    let sockaddr = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolve {addr}: no addresses"))?;
    let stream = TcpStream::connect_timeout(&sockaddr, config.connect_timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(config.write_timeout))
        .map_err(|e| e.to_string())?;
    // Generous read deadline for the handshake; tightened to the poll tick
    // once the reader loop owns the stream.
    stream
        .set_read_timeout(Some(config.connect_timeout))
        .map_err(|e| e.to_string())?;

    let (shard_index, shard_count) = match &config.expect {
        Some(a) => (a.index, a.count),
        None => (0, 1),
    };
    let mut w = &stream;
    write_magic(&mut w).map_err(|e| e.to_string())?;
    write_message(
        &mut w,
        &Message::Hello(Hello {
            role: Role::Frontend,
            shard_index,
            shard_count,
            hash_version: SHARD_HASH_VERSION,
        }),
    )
    .map_err(|e| e.to_string())?;
    w.flush().map_err(|e| e.to_string())?;

    let read_half = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = FrameReader::new(read_half);
    let hello = match reader.read_message() {
        Ok(Some(Message::Hello(h))) => h,
        Ok(Some(_)) => return Err("first frame was not hello".to_string()),
        Ok(None) => return Err("peer closed during handshake".to_string()),
        Err(e) => return Err(format!("handshake: {e}")),
    };
    if hello.hash_version != SHARD_HASH_VERSION {
        return Err(format!(
            "peer speaks shard hash v{}, this build is v{SHARD_HASH_VERSION}",
            hello.hash_version
        ));
    }
    if let Some(expect) = &config.expect {
        if hello.role != Role::Worker
            || hello.shard_index != expect.index
            || hello.shard_count != expect.count
        {
            return Err(format!(
                "peer layout {:?} shard {}/{} does not match expected worker {}/{}",
                hello.role, hello.shard_index, hello.shard_count, expect.index, expect.count
            ));
        }
    }
    stream
        .set_read_timeout(Some(config.read_tick))
        .map_err(|e| e.to_string())?;
    Ok((stream, reader))
}

/// Settle one pending entry with its result, updating client metrics.
fn settle(entry: PendingEntry, result: Result<Response, ServeError>, metrics: &Metrics) {
    match entry.reply {
        PendingReply::Classify(tx) => {
            match &result {
                Ok(r) => {
                    metrics.completed.fetch_add(1, Relaxed);
                    if r.degraded {
                        metrics.degraded.fetch_add(1, Relaxed);
                    }
                    if r.cache_hit {
                        metrics.cache_hits.fetch_add(1, Relaxed);
                    } else {
                        metrics.cache_misses.fetch_add(1, Relaxed);
                    }
                    metrics.record_latency_us(r.latency.as_micros() as u64);
                }
                Err(ServeError::DeadlineExceeded) => {
                    metrics.timed_out.fetch_add(1, Relaxed);
                }
                Err(_) => {
                    metrics.failed.fetch_add(1, Relaxed);
                }
            }
            let _ = tx.send(result);
        }
        // Dropping the sender settles the caller's recv with an error.
        PendingReply::Metrics(_) | PendingReply::Invalidate(_) => {}
    }
}

/// Tear down the connection for `generation` (no-op if a newer connection
/// owns the state), settling every pending request as `WorkerFailed`.
fn disconnect_locked(
    guard: &mut MutexGuard<'_, Inner>,
    generation: u64,
    metrics: &Metrics,
    health: &HealthSink,
) {
    let current = guard.conn.as_ref().map(|c| c.generation);
    if current != Some(generation) {
        return;
    }
    guard.conn = None;
    let pending = std::mem::take(&mut guard.pending);
    // Hold the current backoff; failed *dial* attempts do the doubling.
    guard.next_attempt = Instant::now() + guard.backoff;
    metrics.connections_open.store(0, Relaxed);
    for (_, entry) in pending {
        settle(entry, Err(ServeError::WorkerFailed), metrics);
    }
    (health.mark)(false);
}

fn spawn_reader(
    mut reader: FrameReader<TcpStream>,
    generation: u64,
    inner: &Arc<Mutex<Inner>>,
    metrics: &Arc<Metrics>,
    health: &HealthSink,
    stop: &Arc<AtomicBool>,
    config: &RemoteShardConfig,
) {
    let inner = Arc::clone(inner);
    let metrics = Arc::clone(metrics);
    let health = health.clone();
    let stop = Arc::clone(stop);
    let _ = config;
    std::thread::spawn(move || loop {
        if stop.load(Relaxed) {
            return;
        }
        {
            // A torn-down generation has nothing left to do.
            let guard = lock(&inner);
            if guard.conn.as_ref().map(|c| c.generation) != Some(generation) {
                return;
            }
        }
        match reader.read_message() {
            Ok(Some(msg)) => {
                let mut guard = lock(&inner);
                if guard.conn.as_ref().map(|c| c.generation) != Some(generation) {
                    return;
                }
                guard.last_heard = Instant::now();
                match msg {
                    Message::Reply { req_id, outcome } => {
                        if let Some(entry) = guard.pending.remove(&req_id) {
                            settle(entry, result_of(outcome), &metrics);
                        }
                    }
                    Message::MetricsReply { req_id, json } => {
                        if let Some(entry) = guard.pending.remove(&req_id) {
                            if let PendingReply::Metrics(tx) = entry.reply {
                                let _ = tx.send(json);
                            }
                        }
                    }
                    Message::InvalidateReply {
                        req_id,
                        generation: cache_gen,
                    } => {
                        if let Some(entry) = guard.pending.remove(&req_id) {
                            if let PendingReply::Invalidate(tx) = entry.reply {
                                let _ = tx.send(cache_gen);
                            }
                        }
                    }
                    Message::Pong { processed, .. } => {
                        drop(guard);
                        (health.beat)(processed);
                    }
                    // A server never sends requests; anything else is a
                    // protocol violation — tear the connection down.
                    _ => {
                        disconnect_locked(&mut guard, generation, &metrics, &health);
                        return;
                    }
                }
            }
            Ok(None) => {
                let mut guard = lock(&inner);
                disconnect_locked(&mut guard, generation, &metrics, &health);
                return;
            }
            Err(e) if e.is_timeout() => {
                // Poll tick: sweep expired deadlines.
                let mut guard = lock(&inner);
                if guard.conn.as_ref().map(|c| c.generation) != Some(generation) {
                    return;
                }
                let now = Instant::now();
                let expired: Vec<u64> = guard
                    .pending
                    .iter()
                    .filter(|(_, e)| e.deadline <= now)
                    .map(|(id, _)| *id)
                    .collect();
                for id in expired {
                    if let Some(entry) = guard.pending.remove(&id) {
                        settle(entry, Err(ServeError::DeadlineExceeded), &metrics);
                    }
                }
            }
            Err(_) => {
                let mut guard = lock(&inner);
                disconnect_locked(&mut guard, generation, &metrics, &health);
                return;
            }
        }
    });
}

impl ShardLane for RemoteShard {
    fn submit(&self, record: AddressRecord) -> Result<Ticket, ServeError> {
        self.submit_with_deadline(record, None)
    }

    fn submit_with_deadline(
        &self,
        record: AddressRecord,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        let timeout = deadline.unwrap_or(self.config.request_timeout);
        let mut guard = lock(&self.inner);
        self.metrics.submitted.fetch_add(1, Relaxed);
        if guard.conn.is_none() {
            self.metrics.failed.fetch_add(1, Relaxed);
            return Err(ServeError::WorkerFailed);
        }
        if guard.pending.len() >= self.config.max_in_flight {
            self.metrics.rejected.fetch_add(1, Relaxed);
            return Err(ServeError::QueueFull);
        }
        let req_id = guard.next_req_id;
        guard.next_req_id += 1;
        let (tx, ticket) = Ticket::pending();
        guard.pending.insert(
            req_id,
            PendingEntry {
                reply: PendingReply::Classify(tx),
                deadline: Instant::now() + timeout,
            },
        );
        let msg = Message::Classify {
            req_id,
            address: record.address.0,
        };
        match send_on_conn(&mut guard, req_id, &msg) {
            Ok(()) => Ok(ticket),
            Err(e) => {
                self.metrics.failed.fetch_add(1, Relaxed);
                Err(e)
            }
        }
    }

    fn invalidate_address(&self, addr: Address) -> u64 {
        let (tx, rx) = mpsc::sync_channel(1);
        {
            let mut guard = lock(&self.inner);
            let req_id = guard.next_req_id;
            guard.next_req_id += 1;
            guard.pending.insert(
                req_id,
                PendingEntry {
                    reply: PendingReply::Invalidate(tx),
                    deadline: Instant::now() + self.config.request_timeout,
                },
            );
            let msg = Message::Invalidate {
                req_id,
                address: addr.0,
            };
            if send_on_conn(&mut guard, req_id, &msg).is_err() {
                return 0;
            }
        }
        rx.recv_timeout(self.config.request_timeout).unwrap_or(0)
    }

    fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        let guard = lock(&self.inner);
        snap.queue_depth = guard.pending.len() as u64;
        snap
    }

    fn live_workers(&self) -> usize {
        usize::from(self.is_connected())
    }

    fn shutdown_lane(self: Box<Self>) {
        (*self).shutdown();
    }
}
