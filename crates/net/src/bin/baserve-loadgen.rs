//! Replay zipf-distributed query traffic against a serving engine — local
//! or remote — and report throughput, latency, and cache behavior.
//!
//! ```text
//! baserve-loadgen --artifact model.bart [--seed 42] [--min-txs 3]
//!                 [--requests 2000] [--qps 0] [--zipf 1.1] [--traffic-seed 1]
//!                 [--check] [--window N] [--retry N] [--connect HOST:PORT]
//!                 [engine knobs]
//! ```
//!
//! Queries pick addresses from the rebuilt dataset with a zipf(s) popularity
//! distribution — the skew that makes an embedding LRU worthwhile. `--qps 0`
//! (the default) runs unthrottled; a positive value paces submissions to
//! that target rate. With `--check`, every served label is compared against
//! a direct in-process replica of the same artifact and any mismatch makes
//! the run exit non-zero — the byte-identical-serving acceptance gate.
//!
//! `--retry N` resubmits a request up to N times when the engine sheds it
//! (queue full or circuit breaker open), backing off exponentially with
//! deterministic jitter between attempts.
//!
//! `--connect HOST:PORT` swaps the in-process engine for a BANET
//! connection to a running server (`basharded --listen`, or a worker).
//! Everything else — pacing, retries, the FIFO window, `--check`, the
//! client-side percentiles — is identical, because both paths sit behind
//! the same `ShardLane` surface; the client percentiles then include real
//! network round-trips.

use baclassifier::{BaClassifier, ModelArtifact};
use banet::{HealthSink, RemoteShard, RemoteShardConfig};
use baserve::cli::{engine_config_from_args, flag_parsed, flag_value, has_flag};
use baserve::{splitmix64, Engine, ServeError, ShardLane, Ticket};
use btcsim::dist::ZipfSampler;
use btcsim::{Dataset, Label, SimConfig, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Exact nearest-rank percentile over the collected samples (sorts in
/// place); 0 when no request was served.
fn percentile_us(samples: &mut [u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((samples.len() as f64 * q).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(artifact_path) = flag_value(&args, "--artifact") else {
        eprintln!("usage: baserve-loadgen --artifact model.bart [--requests N] [--qps N] …");
        std::process::exit(2);
    };
    let seed = flag_parsed(&args, "--seed", 42u64);
    let min_txs = flag_parsed(&args, "--min-txs", 3usize);
    let requests = flag_parsed(&args, "--requests", 2000usize);
    let qps = flag_parsed(&args, "--qps", 0.0f64);
    let zipf_s = flag_parsed(&args, "--zipf", 1.1f64);
    let traffic_seed = flag_parsed(&args, "--traffic-seed", 1u64);
    let check = has_flag(&args, "--check");
    let retry_max = flag_parsed(&args, "--retry", 0u32);
    let connect = flag_value(&args, "--connect");
    let config = engine_config_from_args(&args);
    let window = flag_parsed(&args, "--window", config.queue_depth.min(64)).max(1);

    let artifact = match ModelArtifact::load(artifact_path.as_ref()) {
        Ok(a) => Arc::new(a),
        Err(e) => {
            eprintln!("error: could not load artifact {artifact_path}: {e}");
            std::process::exit(1);
        }
    };
    let sim = Simulator::run_to_completion(SimConfig::tiny(seed));
    let dataset = Dataset::from_simulator(&sim, min_txs);
    assert!(
        !dataset.is_empty(),
        "dataset rebuilt from seed {seed} is empty"
    );
    eprintln!(
        "[loadgen] {} addresses, {} requests, zipf s={zipf_s}, target qps={}",
        dataset.len(),
        requests,
        if qps > 0.0 {
            qps.to_string()
        } else {
            "unthrottled".into()
        }
    );

    let direct = if check {
        Some(BaClassifier::from_artifact(&artifact).expect("artifact loads in-process"))
    } else {
        None
    };

    let lane: Box<dyn ShardLane> = match &connect {
        Some(addr) => {
            let remote = RemoteShard::connect(
                addr,
                RemoteShardConfig {
                    max_in_flight: config.queue_depth.max(window),
                    ..RemoteShardConfig::default()
                },
                HealthSink::noop(),
            );
            if !remote.wait_connected(Duration::from_secs(5)) {
                eprintln!("error: could not connect to {addr} within 5s");
                std::process::exit(1);
            }
            eprintln!("[loadgen] connected to {addr}");
            Box::new(remote)
        }
        None => {
            Box::new(Engine::new(artifact, config).expect("engine starts from a valid artifact"))
        }
    };
    let sampler = ZipfSampler::new(dataset.len(), zipf_s);
    let mut rng = StdRng::seed_from_u64(traffic_seed);

    // Direct-replica labels, memoized per address (computed lazily so
    // `--check` only pays for addresses the traffic actually touches).
    let mut expected: HashMap<usize, Label> = HashMap::new();
    let mut in_flight: Vec<(usize, Ticket, Instant)> = Vec::new();
    let mut served = 0usize;
    let mut rejected = 0usize;
    let mut mismatches = 0usize;
    let mut failed = 0usize;
    let mut retries = 0usize;
    let mut jitter_state = traffic_seed ^ 0x9e37_79b9_7f4a_7c15;

    // Client-observed latency (submit → response), in µs. This includes
    // queue wait, ticket settling, and (with `--connect`) the network
    // round-trip, so it upper-bounds the engine's own histogram and is
    // what a remote caller actually sees.
    let settle = |batch: Vec<(usize, Ticket, Instant)>,
                  expected: &mut HashMap<usize, Label>,
                  mismatches: &mut usize,
                  served: &mut usize,
                  failed: &mut usize,
                  latencies_us: &mut Vec<u64>| {
        for (idx, ticket, submitted_at) in batch {
            match ticket.wait() {
                Ok(response) => {
                    *served += 1;
                    latencies_us.push(submitted_at.elapsed().as_micros() as u64);
                    if let Some(direct) = &direct {
                        let want = *expected.entry(idx).or_insert_with(|| {
                            direct
                                .predict(&dataset.records[idx])
                                .expect("records have transactions")
                        });
                        if response.label != want {
                            *mismatches += 1;
                            eprintln!(
                                "[loadgen] MISMATCH address {}: served {} direct {}",
                                dataset.records[idx].address.0,
                                response.label.name(),
                                want.name()
                            );
                        }
                    }
                }
                Err(e) => {
                    *failed += 1;
                    eprintln!("[loadgen] request failed: {e}");
                }
            }
        }
    };

    let mut latencies_us: Vec<u64> = Vec::with_capacity(requests);
    let start = Instant::now();
    for i in 0..requests {
        if qps > 0.0 {
            let due = start + Duration::from_secs_f64(i as f64 / qps);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let idx = sampler.sample(&mut rng);
        // Shed submissions (queue full, breaker open) are transient: with
        // `--retry N` they get up to N more attempts under exponential
        // backoff with deterministic jitter before counting as rejected.
        let mut attempt = 0u32;
        let outcome = loop {
            match lane.submit(dataset.records[idx].clone()) {
                Err(e @ (ServeError::QueueFull | ServeError::BreakerOpen))
                    if attempt < retry_max =>
                {
                    attempt += 1;
                    retries += 1;
                    let base_us = 200u64 << (attempt - 1).min(6);
                    let jitter_us = splitmix64(&mut jitter_state) % (base_us / 2 + 1);
                    std::thread::sleep(Duration::from_micros(base_us + jitter_us));
                    let _ = e;
                }
                other => break other,
            }
        };
        match outcome {
            Ok(ticket) => in_flight.push((idx, ticket, Instant::now())),
            Err(ServeError::QueueFull | ServeError::BreakerOpen) => rejected += 1,
            Err(e) => {
                eprintln!("[loadgen] submit failed: {e}");
                failed += 1;
            }
        }
        if in_flight.len() >= window {
            let batch = std::mem::take(&mut in_flight);
            settle(
                batch,
                &mut expected,
                &mut mismatches,
                &mut served,
                &mut failed,
                &mut latencies_us,
            );
        }
    }
    settle(
        in_flight,
        &mut expected,
        &mut mismatches,
        &mut served,
        &mut failed,
        &mut latencies_us,
    );
    let elapsed = start.elapsed();

    let snapshot = lane.metrics();
    lane.shutdown_lane();
    println!(
        "served {served}/{requests} in {:.2}s ({:.0} req/s), {rejected} rejected, \
         {failed} failed, {retries} retries",
        elapsed.as_secs_f64(),
        served as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    println!(
        "cache hit rate {:.1}% | mean batch {:.2} (max {}) | engine p50/p95/p99 latency {}/{}/{} µs",
        snapshot.cache_hit_rate * 100.0,
        snapshot.mean_batch_size,
        snapshot.max_batch_size,
        snapshot.p50_latency_us,
        snapshot.p95_latency_us,
        snapshot.p99_latency_us,
    );
    println!(
        "client  p50/p95/p99 latency {}/{}/{} µs (submit → response, exact over {} samples)",
        percentile_us(&mut latencies_us, 0.50),
        percentile_us(&mut latencies_us, 0.95),
        percentile_us(&mut latencies_us, 0.99),
        latencies_us.len(),
    );
    println!("metrics {}", snapshot.to_json());
    if check {
        if mismatches > 0 {
            eprintln!("[loadgen] FAIL: {mismatches} served labels differ from the direct model");
            std::process::exit(1);
        }
        println!("check passed: all {served} served labels match the direct model");
    }
}
