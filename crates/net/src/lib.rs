//! # banet — the multi-process shard fleet transport
//!
//! `bashard` scales the serving engine across shards inside one process;
//! `banet` cuts the process boundary: shard workers become independent
//! processes reached over TCP, speaking a length-prefixed, CRC-framed
//! protocol (**BANET v1**) that carries the same requests, responses, and
//! metrics the in-process stack uses.
//!
//! Three pieces:
//!
//! * [`frame`] — the wire format: `BANET v1` magic per direction, then
//!   `[len][crc32][payload]` frames (the `bstream` journal's framing
//!   discipline applied to a socket). Corruption of any kind decodes to a
//!   typed error, never a panic, and the incremental [`frame::FrameReader`]
//!   survives short reads and poll-tick timeouts without desyncing.
//! * [`server`] — [`server::NetServer`]: a bounded, deadline-enforcing TCP
//!   front over a [`server::NetBackend`] (an engine + dataset, or a shard
//!   worker). Honors the process SIGINT flag and remote `Shutdown` frames;
//!   sheds connections beyond `max_connections`; cuts peers that stall
//!   mid-frame.
//! * [`client`] — [`client::RemoteShard`]: a `baserve::ShardLane` backed by
//!   one multiplexed connection to a worker process, with fail-fast
//!   submits, client-side deadlines, exponential-backoff reconnect, and
//!   health probes feeding `bashard`'s shard health board. Because it is a
//!   `ShardLane`, `bashard::ShardRouter` fans batches across remote
//!   workers with the exact same placement and merge order as in-process
//!   engines — responses stay byte-identical.
//!
//! The layout handshake (each side's first frame is a [`frame::Hello`])
//! refuses to pair endpoints whose `SHARD_HASH_VERSION` or shard
//! assignment disagree: a misconfigured fleet fails loudly at connect
//! time, not silently at routing time.

pub mod client;
pub mod frame;
pub mod server;

pub use client::{HealthSink, RemoteShard, RemoteShardConfig};
pub use frame::{FrameError, FrameReader, Hello, Message, ReplyOutcome, Role, MAX_FRAME_LEN};
pub use server::{listen_reuse, EngineBackend, NetBackend, NetServer, NetServerConfig, WireError};
