//! The BANET server: a TCP front over a serving backend.
//!
//! [`NetServer`] owns a `TcpListener` and a [`NetBackend`] (an engine plus
//! its address dataset, or a shard worker validating ownership) and serves
//! the BANET v1 protocol: handshake, classify, metrics, health probes,
//! cache invalidation, and remote shutdown.
//!
//! Structure per connection: the accept thread (nonblocking listener,
//! 10 ms poll so the stop flag and the process SIGINT flag are honored)
//! spawns one *reader* thread per connection, which handshakes and then
//! decodes request frames; classify tickets are handed to a per-connection
//! *writer* thread that waits on them in submission order, so slow
//! inference never blocks frame decoding and control traffic (pings,
//! metrics) answers immediately through a shared write-half mutex.
//!
//! Bounds and deadlines:
//! * at most `max_connections` concurrent connections — excess accepts
//!   are closed immediately (the kernel backlog stays bounded);
//! * reads tick every `read_tick` so stop/SIGINT are observed; a peer
//!   that stalls **mid-frame** longer than `stall_timeout` is cut off
//!   (idle connections are fine — the client prober keeps live ones warm);
//! * writes carry `write_timeout` so one dead client cannot wedge a
//!   writer thread forever.
//!
//! A `Shutdown` frame stops this server only (its local flag), never the
//! whole process — in-process test fleets must not contaminate each other.

use crate::frame::{
    write_magic, write_message, FrameError, FrameReader, Hello, Message, ReplyOutcome, Role,
};
use baclassifier::PredictError;
use baserve::metrics::MetricsSnapshot;
use baserve::shutdown;
use baserve::{Engine, Response, ServeError, Ticket};
use btcsim::{Address, AddressRecord};
use std::collections::HashMap;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Bind a listener with `SO_REUSEADDR`, so a respawned worker can reclaim
/// a port whose previous generation's connections are still in TIME_WAIT
/// (a plain [`TcpListener::bind`] gets `AddrInUse` for up to a minute
/// after a server that actively closed its connections exits).
///
/// IPv4 only on unix — the fleet binds loopback/interface v4 addresses;
/// anything else falls back to a plain bind.
pub fn listen_reuse(addr: std::net::SocketAddr) -> std::io::Result<TcpListener> {
    #[cfg(unix)]
    {
        if let std::net::SocketAddr::V4(v4) = addr {
            return listen_reuse_v4(v4);
        }
    }
    TcpListener::bind(addr)
}

#[cfg(unix)]
fn listen_reuse_v4(addr: std::net::SocketAddrV4) -> std::io::Result<TcpListener> {
    use std::os::unix::io::FromRawFd;

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    const BACKLOG: i32 = 128;

    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port_be: u16,
        addr_be: u32,
        zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let fail = |fd: i32| {
            let e = std::io::Error::last_os_error();
            close(fd);
            Err(e)
        };
        let one: i32 = 1;
        if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) != 0 {
            return fail(fd);
        }
        let sin = SockaddrIn {
            family: AF_INET as u16,
            port_be: addr.port().to_be(),
            addr_be: u32::from(*addr.ip()).to_be(),
            zero: [0; 8],
        };
        if bind(fd, &sin, std::mem::size_of::<SockaddrIn>() as u32) != 0 {
            return fail(fd);
        }
        if listen(fd, BACKLOG) != 0 {
            return fail(fd);
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

/// Why a request could not be admitted to the backend.
pub enum WireError {
    /// Engine-level failure; travels as the matching reply status.
    Serve(ServeError),
    /// Refused before any engine saw it (unknown address, shard ownership
    /// violation); travels as `Reject(reason)`.
    Reject(String),
}

/// What a [`NetServer`] serves: one shard's (or one engine's) worth of
/// classification capacity.
pub trait NetBackend: Send + Sync {
    /// Admit the request for simulator address `id`. Must fail fast.
    fn submit(&self, id: u64) -> Result<Ticket, WireError>;

    /// Point-in-time metrics; the server overrides `connections_open`
    /// with its live connection count before rendering.
    fn metrics(&self) -> MetricsSnapshot;

    /// Invalidate cached state for `id`; returns the new cache generation.
    fn invalidate(&self, id: u64) -> u64;

    /// Completed-request count — the progress beat carried on `Pong`.
    fn processed(&self) -> u64;
}

/// The standard backend: an engine plus the id→record dataset it answers
/// for. Unknown ids are rejected without touching the engine.
pub struct EngineBackend {
    engine: Engine,
    by_id: HashMap<u64, AddressRecord>,
}

impl EngineBackend {
    pub fn new(engine: Engine, by_id: HashMap<u64, AddressRecord>) -> Self {
        EngineBackend { engine, by_id }
    }

    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Consume the backend and shut its engine down.
    pub fn shutdown(self) {
        self.engine.shutdown();
    }
}

impl NetBackend for EngineBackend {
    fn submit(&self, id: u64) -> Result<Ticket, WireError> {
        let record = self
            .by_id
            .get(&id)
            .ok_or_else(|| WireError::Reject(format!("no such address {id}")))?;
        self.engine.submit(record.clone()).map_err(WireError::Serve)
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.engine.metrics()
    }

    fn invalidate(&self, id: u64) -> u64 {
        self.engine.invalidate_address(Address(id))
    }

    fn processed(&self) -> u64 {
        // The beat must only advance when work actually finishes, so the
        // health board can spot a wedged worker that still accepts.
        let snap = self.engine.metrics();
        snap.completed + snap.degraded
    }
}

/// Knobs for a [`NetServer`].
#[derive(Clone)]
pub struct NetServerConfig {
    /// The layout this server advertises (and whose `hash_version` the
    /// peer must match).
    pub hello: Hello,
    pub max_connections: usize,
    /// Read poll tick — latency bound on observing stop/SIGINT.
    pub read_tick: Duration,
    /// How long a peer may stall mid-frame before the connection is cut.
    pub stall_timeout: Duration,
    pub write_timeout: Duration,
}

impl NetServerConfig {
    /// Config for a worker serving shard `index` of `count`.
    pub fn for_shard(index: u32, count: u32) -> Self {
        NetServerConfig {
            hello: Hello {
                role: Role::Worker,
                shard_index: index,
                shard_count: count,
                hash_version: baclassifier::SHARD_HASH_VERSION,
            },
            max_connections: 64,
            read_tick: Duration::from_millis(50),
            stall_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }

    /// Config for an unsharded server (shard 0 of 1).
    pub fn unsharded() -> Self {
        Self::for_shard(0, 1)
    }
}

/// Translate an engine outcome to the wire.
pub fn outcome_of(result: &Result<Response, ServeError>) -> ReplyOutcome {
    match result {
        Ok(r) => ReplyOutcome::Ok {
            label_index: r.label.index() as u8,
            cache_hit: r.cache_hit,
            degraded: r.degraded,
            latency_us: r.latency.as_micros() as u64,
        },
        Err(ServeError::QueueFull) => ReplyOutcome::QueueFull,
        Err(ServeError::ShuttingDown) => ReplyOutcome::ShuttingDown,
        Err(ServeError::Predict(PredictError::NotFitted)) => ReplyOutcome::NotFitted,
        Err(ServeError::Predict(PredictError::EmptyHistory)) => ReplyOutcome::EmptyHistory,
        Err(ServeError::WorkerFailed) => ReplyOutcome::WorkerFailed,
        Err(ServeError::DeadlineExceeded) => ReplyOutcome::DeadlineExceeded,
        Err(ServeError::BreakerOpen) => ReplyOutcome::BreakerOpen,
    }
}

/// One unit handed from a connection's reader to its writer thread.
enum WriteJob {
    /// Wait on the ticket, then reply for `req_id`.
    Settle(u64, Ticket),
}

struct ConnShared {
    /// Write half, shared between the writer thread (classify replies) and
    /// the reader thread (immediate control replies).
    write: Mutex<TcpStream>,
}

impl ConnShared {
    fn send(&self, msg: &Message) -> std::io::Result<()> {
        let mut w = self.write.lock().unwrap_or_else(|p| p.into_inner());
        write_message(&mut *w, msg)?;
        w.flush()
    }
}

/// A running BANET server. Dropping without [`NetServer::stop`] leaks the
/// accept thread until process exit; daemons call `stop()`.
pub struct NetServer {
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl NetServer {
    /// Start serving `backend` on `listener`.
    pub fn spawn(
        listener: TcpListener,
        backend: Arc<dyn NetBackend>,
        config: NetServerConfig,
    ) -> std::io::Result<NetServer> {
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(listener, backend, config, stop))
        };
        Ok(NetServer {
            local_addr,
            stop,
            accept: Some(accept),
        })
    }

    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Whether this server has been asked to stop (locally, remotely via a
    /// `Shutdown` frame, or by process SIGINT).
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Relaxed) || shutdown::shutdown_requested()
    }

    /// Stop accepting, drain connections, join all threads.
    pub fn stop(mut self) {
        self.stop.store(true, Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Block until the server stops on its own (remote `Shutdown` frame or
    /// SIGINT), polling every 50 ms; then join.
    pub fn run_to_stop(mut self) {
        while !self.stop_requested() {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.stop.store(true, Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    backend: Arc<dyn NetBackend>,
    config: NetServerConfig,
    stop: Arc<AtomicBool>,
) {
    let open = Arc::new(AtomicUsize::new(0));
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Relaxed) && !shutdown::shutdown_requested() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if open.load(Relaxed) >= config.max_connections {
                    // Bounded backlog: shed the connection instead of
                    // queueing unboundedly.
                    drop(stream);
                    continue;
                }
                open.fetch_add(1, Relaxed);
                let backend = Arc::clone(&backend);
                let config = config.clone();
                let stop = Arc::clone(&stop);
                let open = Arc::clone(&open);
                conns.push(std::thread::spawn(move || {
                    let _ = serve_connection(stream, backend, &config, &stop, &open);
                    open.fetch_sub(1, Relaxed);
                }));
                // Reap finished connection threads so the vec stays small.
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
                conns.retain(|h| !h.is_finished());
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    stop.store(true, Relaxed); // propagate SIGINT-initiated stop to conns
    for h in conns {
        let _ = h.join();
    }
}

fn serve_connection(
    stream: TcpStream,
    backend: Arc<dyn NetBackend>,
    config: &NetServerConfig,
    stop: &AtomicBool,
    open: &AtomicUsize,
) -> Result<(), FrameError> {
    stream.set_read_timeout(Some(config.read_tick))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    stream.set_nodelay(true)?;
    let write_half = stream.try_clone()?;
    let shared = Arc::new(ConnShared {
        write: Mutex::new(write_half),
    });

    // Our half of the handshake goes out first; the peer's magic + Hello
    // must be the first thing we read.
    {
        let mut w = shared.write.lock().unwrap_or_else(|p| p.into_inner());
        write_magic(&mut *w)?;
        write_message(&mut *w, &Message::Hello(config.hello))?;
        w.flush()?;
    }
    let mut reader = FrameReader::new(stream);
    let peer_hello = loop {
        match reader.read_message() {
            Ok(Some(Message::Hello(h))) => break h,
            Ok(Some(_)) => return Err(FrameError::Malformed("first frame must be hello")),
            Ok(None) => return Err(FrameError::Truncated),
            Err(e) if e.is_timeout() => {
                if stop.load(Relaxed) || shutdown::shutdown_requested() {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    };
    if peer_hello.hash_version != config.hello.hash_version {
        // A peer that places addresses differently must not pair up with
        // us; closing before serving anything is the rejection.
        return Err(FrameError::Malformed("shard hash version mismatch"));
    }

    // Writer thread: settles classify tickets in submission order.
    let (job_tx, job_rx) = mpsc::channel::<WriteJob>();
    let writer = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            while let Ok(WriteJob::Settle(req_id, ticket)) = job_rx.recv() {
                let outcome = outcome_of(&ticket.wait());
                if shared.send(&Message::Reply { req_id, outcome }).is_err() {
                    // Peer is gone; keep draining so tickets still resolve.
                }
            }
        })
    };

    let mut stall_started: Option<Instant> = None;
    let result = loop {
        if stop.load(Relaxed) || shutdown::shutdown_requested() {
            break Ok(());
        }
        let msg = match reader.read_message() {
            Ok(Some(m)) => m,
            Ok(None) => break Ok(()), // clean EOF
            Err(e) if e.is_timeout() => {
                // Only a *mid-frame* stall is hostile; idle is fine.
                if reader.mid_frame() {
                    let started = *stall_started.get_or_insert_with(Instant::now);
                    if started.elapsed() > config.stall_timeout {
                        break Err(FrameError::Truncated);
                    }
                } else {
                    stall_started = None;
                }
                continue;
            }
            Err(e) => break Err(e),
        };
        stall_started = None;
        match msg {
            Message::Classify { req_id, address } => match backend.submit(address) {
                Ok(ticket) => {
                    if job_tx.send(WriteJob::Settle(req_id, ticket)).is_err() {
                        break Ok(());
                    }
                }
                Err(WireError::Serve(e)) => {
                    let outcome = outcome_of(&Err(e));
                    if shared.send(&Message::Reply { req_id, outcome }).is_err() {
                        break Ok(());
                    }
                }
                Err(WireError::Reject(reason)) => {
                    let outcome = ReplyOutcome::Reject(reason);
                    if shared.send(&Message::Reply { req_id, outcome }).is_err() {
                        break Ok(());
                    }
                }
            },
            Message::MetricsReq { req_id } => {
                let mut snap = backend.metrics();
                snap.connections_open = open.load(Relaxed) as u64;
                let reply = Message::MetricsReply {
                    req_id,
                    json: snap.to_json(),
                };
                if shared.send(&reply).is_err() {
                    break Ok(());
                }
            }
            Message::Ping { nonce } => {
                let pong = Message::Pong {
                    nonce,
                    processed: backend.processed(),
                };
                if shared.send(&pong).is_err() {
                    break Ok(());
                }
            }
            Message::Invalidate { req_id, address } => {
                let reply = Message::InvalidateReply {
                    req_id,
                    generation: backend.invalidate(address),
                };
                if shared.send(&reply).is_err() {
                    break Ok(());
                }
            }
            Message::Shutdown => {
                // Stops *this server*, never the whole process: in-process
                // test fleets share the process-wide SIGINT flag.
                stop.store(true, Relaxed);
                break Ok(());
            }
            Message::Hello(_) => {
                break Err(FrameError::Malformed("unexpected mid-stream hello"));
            }
            // Server-bound streams never carry replies; a peer that sends
            // one is confused.
            Message::Reply { .. }
            | Message::MetricsReply { .. }
            | Message::Pong { .. }
            | Message::InvalidateReply { .. } => {
                break Err(FrameError::Malformed("reply frame on server stream"));
            }
        }
    };
    drop(job_tx);
    let _ = writer.join();
    result
}
