//! The BANET v1 wire format: length-prefixed, CRC-framed messages.
//!
//! The framing mirrors the `bstream` journal (`BJRNL v1`): a magic string
//! once per direction at stream start, then frames of
//! `[u32 LE payload-len][u32 LE crc32(payload)][payload]`. The CRC is the
//! same IEEE polynomial the journal uses ([`bstream::crc32`]), so a frame
//! that survives the checksum is exactly as trustworthy as a journal
//! record. Payloads are capped at [`MAX_FRAME_LEN`] — a corrupt or
//! malicious length prefix is rejected before any allocation.
//!
//! The payload is `[u8 message-type][little-endian body]`; see [`Message`]
//! for the catalogue. Two properties the fleet depends on:
//!
//! * **Self-describing errors, never panics.** Every decode failure is a
//!   typed [`FrameError`]; the property tests in
//!   `tests/frame_properties.rs` fuzz bit flips, truncations, and garbage
//!   against this promise.
//! * **Desync-free incremental reads.** [`FrameReader`] accumulates bytes
//!   across short reads and read timeouts (`WouldBlock`/`TimedOut`), so a
//!   socket with a poll-tick read deadline can park mid-frame and resume
//!   without losing its place. After any *fatal* error the reader is
//!   poisoned and refuses further reads — a stream that failed a CRC has
//!   no trustworthy frame boundary left.

use std::io::{ErrorKind, Read, Write};

/// Stream preamble, sent once per direction before the first frame.
pub const MAGIC: &[u8; 8] = b"BANET v1";

/// Upper bound on a frame payload. Requests and replies are tiny; metrics
/// JSON is the largest legitimate payload and sits well under 1 MiB.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Message-type discriminants (first payload byte).
mod msg_type {
    pub const HELLO: u8 = 1;
    pub const CLASSIFY: u8 = 2;
    pub const REPLY: u8 = 3;
    pub const METRICS_REQ: u8 = 4;
    pub const METRICS_REPLY: u8 = 5;
    pub const PING: u8 = 6;
    pub const PONG: u8 = 7;
    pub const SHUTDOWN: u8 = 8;
    pub const INVALIDATE: u8 = 9;
    pub const INVALIDATE_REPLY: u8 = 10;
}

/// Who is on the other end of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A client (router, loadgen) that submits requests.
    Frontend,
    /// A shard worker process that answers them.
    Worker,
}

impl Role {
    fn to_byte(self) -> u8 {
        match self {
            Role::Frontend => 0,
            Role::Worker => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Role, FrameError> {
        match b {
            0 => Ok(Role::Frontend),
            1 => Ok(Role::Worker),
            _ => Err(FrameError::Malformed("unknown role byte")),
        }
    }
}

/// The handshake frame each side sends right after its magic. Carries the
/// sender's shard layout so a frontend can refuse to talk to a worker that
/// owns the wrong slice of the address space (or hashes addresses with a
/// different partition function).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    pub role: Role,
    /// Shard index this endpoint serves (0 for frontends and unsharded
    /// servers).
    pub shard_index: u32,
    /// Fleet shard count (1 for unsharded).
    pub shard_count: u32,
    /// Must equal `bashard`'s `SHARD_HASH_VERSION`; a mismatch means the
    /// two processes place addresses differently and must not pair up.
    pub hash_version: u32,
}

/// Terminal outcome of a classify request, as carried on the wire.
///
/// Mirrors `Result<baserve::Response, ServeError>` closely enough that the
/// client lane can reconstruct a `Response` byte-identical to an
/// in-process one (labels are carried by index; the latency figure is the
/// worker-side measurement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyOutcome {
    Ok {
        label_index: u8,
        cache_hit: bool,
        degraded: bool,
        latency_us: u64,
    },
    QueueFull,
    ShuttingDown,
    NotFitted,
    EmptyHistory,
    WorkerFailed,
    DeadlineExceeded,
    BreakerOpen,
    /// Request refused before reaching an engine: unknown address, shard
    /// ownership violation. Carries a human-readable reason.
    Reject(String),
}

mod status {
    pub const OK: u8 = 0;
    pub const QUEUE_FULL: u8 = 1;
    pub const SHUTTING_DOWN: u8 = 2;
    pub const NOT_FITTED: u8 = 3;
    pub const EMPTY_HISTORY: u8 = 4;
    pub const WORKER_FAILED: u8 = 5;
    pub const DEADLINE_EXCEEDED: u8 = 6;
    pub const BREAKER_OPEN: u8 = 7;
    pub const REJECT: u8 = 8;
}

/// Everything that can travel in a BANET frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Layout handshake; first frame in each direction.
    Hello(Hello),
    /// Classify the address with this simulator id.
    Classify { req_id: u64, address: u64 },
    /// Outcome of a `Classify`.
    Reply { req_id: u64, outcome: ReplyOutcome },
    /// Request the server's metrics snapshot.
    MetricsReq { req_id: u64 },
    /// Metrics snapshot as the single-line JSON `MetricsSnapshot::to_json`
    /// renders.
    MetricsReply { req_id: u64, json: String },
    /// Liveness probe.
    Ping { nonce: u64 },
    /// Probe answer; `processed` is the server's completed-request count,
    /// which feeds the health board's progress beat.
    Pong { nonce: u64, processed: u64 },
    /// Ask the server to stop accepting and drain.
    Shutdown,
    /// Supersede cached embeddings for an address.
    Invalidate { req_id: u64, address: u64 },
    /// Invalidation acknowledged at this cache generation.
    InvalidateReply { req_id: u64, generation: u64 },
}

/// Why a frame (or stream) could not be decoded.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying transport failure.
    Io(std::io::Error),
    /// Stream preamble was not `BANET v1`.
    BadMagic,
    /// Length prefix exceeds [`MAX_FRAME_LEN`].
    TooLarge(u32),
    /// Stream ended mid-frame.
    Truncated,
    /// Payload failed its CRC.
    Crc { expected: u32, actual: u32 },
    /// Payload structure invalid (unknown type, short body, bad UTF-8…).
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::BadMagic => write!(f, "bad stream magic (want BANET v1)"),
            FrameError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds cap {MAX_FRAME_LEN}")
            }
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Crc { expected, actual } => {
                write!(
                    f,
                    "frame crc mismatch: stored {expected:08x}, computed {actual:08x}"
                )
            }
            FrameError::Malformed(what) => write!(f, "malformed frame payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// Whether the error is a transient read timeout (poll tick) rather
    /// than a real failure. Callers retry these; everything else poisons
    /// the stream.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
        )
    }
}

// ---------------------------------------------------------------------------
// Payload encode/decode (pure, byte-level — the proptest target)
// ---------------------------------------------------------------------------

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or(FrameError::Malformed("payload body too short"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(raw))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(raw))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(FrameError::Malformed("payload body too short"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn string(&mut self) -> Result<String, FrameError> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| FrameError::Malformed("string not utf-8"))
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(FrameError::Malformed("trailing bytes after payload body"))
        }
    }
}

fn push_string(buf: &mut Vec<u8>, s: &str) {
    push_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

impl Message {
    /// Serialise to a frame payload (type byte + LE body).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        match self {
            Message::Hello(h) => {
                buf.push(msg_type::HELLO);
                buf.push(h.role.to_byte());
                push_u32(&mut buf, h.shard_index);
                push_u32(&mut buf, h.shard_count);
                push_u32(&mut buf, h.hash_version);
            }
            Message::Classify { req_id, address } => {
                buf.push(msg_type::CLASSIFY);
                push_u64(&mut buf, *req_id);
                push_u64(&mut buf, *address);
            }
            Message::Reply { req_id, outcome } => {
                buf.push(msg_type::REPLY);
                push_u64(&mut buf, *req_id);
                match outcome {
                    ReplyOutcome::Ok {
                        label_index,
                        cache_hit,
                        degraded,
                        latency_us,
                    } => {
                        buf.push(status::OK);
                        buf.push(*label_index);
                        let mut flags = 0u8;
                        if *cache_hit {
                            flags |= 1;
                        }
                        if *degraded {
                            flags |= 2;
                        }
                        buf.push(flags);
                        push_u64(&mut buf, *latency_us);
                    }
                    ReplyOutcome::QueueFull => buf.push(status::QUEUE_FULL),
                    ReplyOutcome::ShuttingDown => buf.push(status::SHUTTING_DOWN),
                    ReplyOutcome::NotFitted => buf.push(status::NOT_FITTED),
                    ReplyOutcome::EmptyHistory => buf.push(status::EMPTY_HISTORY),
                    ReplyOutcome::WorkerFailed => buf.push(status::WORKER_FAILED),
                    ReplyOutcome::DeadlineExceeded => buf.push(status::DEADLINE_EXCEEDED),
                    ReplyOutcome::BreakerOpen => buf.push(status::BREAKER_OPEN),
                    ReplyOutcome::Reject(reason) => {
                        buf.push(status::REJECT);
                        push_string(&mut buf, reason);
                    }
                }
            }
            Message::MetricsReq { req_id } => {
                buf.push(msg_type::METRICS_REQ);
                push_u64(&mut buf, *req_id);
            }
            Message::MetricsReply { req_id, json } => {
                buf.push(msg_type::METRICS_REPLY);
                push_u64(&mut buf, *req_id);
                push_string(&mut buf, json);
            }
            Message::Ping { nonce } => {
                buf.push(msg_type::PING);
                push_u64(&mut buf, *nonce);
            }
            Message::Pong { nonce, processed } => {
                buf.push(msg_type::PONG);
                push_u64(&mut buf, *nonce);
                push_u64(&mut buf, *processed);
            }
            Message::Shutdown => buf.push(msg_type::SHUTDOWN),
            Message::Invalidate { req_id, address } => {
                buf.push(msg_type::INVALIDATE);
                push_u64(&mut buf, *req_id);
                push_u64(&mut buf, *address);
            }
            Message::InvalidateReply { req_id, generation } => {
                buf.push(msg_type::INVALIDATE_REPLY);
                push_u64(&mut buf, *req_id);
                push_u64(&mut buf, *generation);
            }
        }
        buf
    }

    /// Parse a frame payload. Total function over arbitrary bytes: every
    /// failure is a [`FrameError::Malformed`], never a panic.
    pub fn decode(payload: &[u8]) -> Result<Message, FrameError> {
        let mut c = Cursor::new(payload);
        let msg = match c.u8()? {
            msg_type::HELLO => Message::Hello(Hello {
                role: Role::from_byte(c.u8()?)?,
                shard_index: c.u32()?,
                shard_count: c.u32()?,
                hash_version: c.u32()?,
            }),
            msg_type::CLASSIFY => Message::Classify {
                req_id: c.u64()?,
                address: c.u64()?,
            },
            msg_type::REPLY => {
                let req_id = c.u64()?;
                let outcome = match c.u8()? {
                    status::OK => {
                        let label_index = c.u8()?;
                        let flags = c.u8()?;
                        if flags & !3 != 0 {
                            return Err(FrameError::Malformed("unknown reply flags"));
                        }
                        ReplyOutcome::Ok {
                            label_index,
                            cache_hit: flags & 1 != 0,
                            degraded: flags & 2 != 0,
                            latency_us: c.u64()?,
                        }
                    }
                    status::QUEUE_FULL => ReplyOutcome::QueueFull,
                    status::SHUTTING_DOWN => ReplyOutcome::ShuttingDown,
                    status::NOT_FITTED => ReplyOutcome::NotFitted,
                    status::EMPTY_HISTORY => ReplyOutcome::EmptyHistory,
                    status::WORKER_FAILED => ReplyOutcome::WorkerFailed,
                    status::DEADLINE_EXCEEDED => ReplyOutcome::DeadlineExceeded,
                    status::BREAKER_OPEN => ReplyOutcome::BreakerOpen,
                    status::REJECT => ReplyOutcome::Reject(c.string()?),
                    _ => return Err(FrameError::Malformed("unknown reply status")),
                };
                Message::Reply { req_id, outcome }
            }
            msg_type::METRICS_REQ => Message::MetricsReq { req_id: c.u64()? },
            msg_type::METRICS_REPLY => Message::MetricsReply {
                req_id: c.u64()?,
                json: c.string()?,
            },
            msg_type::PING => Message::Ping { nonce: c.u64()? },
            msg_type::PONG => Message::Pong {
                nonce: c.u64()?,
                processed: c.u64()?,
            },
            msg_type::SHUTDOWN => Message::Shutdown,
            msg_type::INVALIDATE => Message::Invalidate {
                req_id: c.u64()?,
                address: c.u64()?,
            },
            msg_type::INVALIDATE_REPLY => Message::InvalidateReply {
                req_id: c.u64()?,
                generation: c.u64()?,
            },
            _ => return Err(FrameError::Malformed("unknown message type")),
        };
        c.finish()?;
        Ok(msg)
    }
}

/// Serialise a message into a complete frame (header + payload), ready for
/// a single `write_all`.
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let payload = msg.encode();
    let mut frame = Vec::with_capacity(8 + payload.len());
    push_u32(&mut frame, payload.len() as u32);
    push_u32(&mut frame, bstream::crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

/// Decode one frame from the **start** of `bytes`.
///
/// Returns `Ok(None)` when the buffer holds a valid prefix of an
/// incomplete frame (read more), `Ok(Some((msg, consumed)))` on success,
/// and `Err` for any unrecoverable corruption.
pub fn decode_frame(bytes: &[u8]) -> Result<Option<(Message, usize)>, FrameError> {
    if bytes.len() < 8 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    let stored_crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let total = 8 + len as usize;
    if bytes.len() < total {
        return Ok(None);
    }
    let payload = &bytes[8..total];
    let actual = bstream::crc32(payload);
    if actual != stored_crc {
        return Err(FrameError::Crc {
            expected: stored_crc,
            actual,
        });
    }
    let msg = Message::decode(payload)?;
    Ok(Some((msg, total)))
}

// ---------------------------------------------------------------------------
// Stream adapters
// ---------------------------------------------------------------------------

/// Write the stream preamble.
pub fn write_magic<W: Write>(w: &mut W) -> std::io::Result<()> {
    w.write_all(MAGIC)
}

/// Write one framed message.
pub fn write_message<W: Write>(w: &mut W, msg: &Message) -> std::io::Result<()> {
    w.write_all(&encode_frame(msg))
}

/// Incremental frame reader over a byte stream.
///
/// Short reads and read timeouts leave partial bytes buffered; the next
/// [`FrameReader::read_message`] call resumes exactly where the stream
/// paused, so a socket with `set_read_timeout` as a poll tick never
/// desyncs. Fatal errors (bad magic, CRC, malformed payload, EOF
/// mid-frame) poison the reader — there is no trustworthy frame boundary
/// after corruption.
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Bytes of `buf` holding not-yet-consumed stream data.
    filled: usize,
    magic_seen: bool,
    poisoned: bool,
}

impl<R: Read> FrameReader<R> {
    pub fn new(inner: R) -> Self {
        FrameReader {
            inner,
            buf: Vec::new(),
            filled: 0,
            magic_seen: false,
            poisoned: false,
        }
    }

    /// Pull more bytes from the stream into the buffer. `Ok(0)` is EOF.
    fn fill(&mut self) -> std::io::Result<usize> {
        let mut chunk = [0u8; 4096];
        let n = self.inner.read(&mut chunk)?;
        self.buf.truncate(self.filled);
        self.buf.extend_from_slice(&chunk[..n]);
        self.filled += n;
        Ok(n)
    }

    fn consume(&mut self, n: usize) {
        self.buf.drain(..n);
        self.filled -= n;
    }

    /// Read the next message. `Ok(None)` is a clean EOF at a frame
    /// boundary. Timeouts surface as `FrameError::Io` with
    /// `is_timeout() == true` and do **not** poison the reader; every
    /// other error does.
    pub fn read_message(&mut self) -> Result<Option<Message>, FrameError> {
        if self.poisoned {
            return Err(FrameError::Malformed("reader poisoned by earlier error"));
        }
        loop {
            if !self.magic_seen {
                if self.filled >= MAGIC.len() {
                    if &self.buf[..MAGIC.len()] != MAGIC {
                        self.poisoned = true;
                        return Err(FrameError::BadMagic);
                    }
                    self.consume(MAGIC.len());
                    self.magic_seen = true;
                    continue;
                }
            } else {
                match decode_frame(&self.buf[..self.filled]) {
                    Ok(Some((msg, consumed))) => {
                        self.consume(consumed);
                        return Ok(Some(msg));
                    }
                    Ok(None) => {}
                    Err(e) => {
                        self.poisoned = true;
                        return Err(e);
                    }
                }
            }
            match self.fill() {
                Ok(0) => {
                    return if self.filled == 0 && self.magic_seen {
                        Ok(None)
                    } else {
                        self.poisoned = true;
                        Err(FrameError::Truncated)
                    };
                }
                Ok(_) => {}
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    // Poll tick: keep the partial frame buffered, resume on
                    // the next call.
                    return Err(FrameError::Io(e));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.poisoned = true;
                    return Err(FrameError::Io(e));
                }
            }
        }
    }

    /// Whether any bytes are parked mid-frame (used by deadline logic: a
    /// stalled *partial* frame is a slow peer, an empty buffer is idle).
    pub fn mid_frame(&self) -> bool {
        self.filled > 0
    }

    pub fn get_ref(&self) -> &R {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let payload = msg.encode();
        assert_eq!(Message::decode(&payload).unwrap(), msg);
        let frame = encode_frame(&msg);
        let (decoded, consumed) = decode_frame(&frame).unwrap().unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(consumed, frame.len());
    }

    #[test]
    fn every_message_roundtrips() {
        roundtrip(Message::Hello(Hello {
            role: Role::Worker,
            shard_index: 3,
            shard_count: 8,
            hash_version: 1,
        }));
        roundtrip(Message::Classify {
            req_id: 42,
            address: u64::MAX,
        });
        roundtrip(Message::Reply {
            req_id: 42,
            outcome: ReplyOutcome::Ok {
                label_index: 2,
                cache_hit: true,
                degraded: false,
                latency_us: 1234,
            },
        });
        for outcome in [
            ReplyOutcome::QueueFull,
            ReplyOutcome::ShuttingDown,
            ReplyOutcome::NotFitted,
            ReplyOutcome::EmptyHistory,
            ReplyOutcome::WorkerFailed,
            ReplyOutcome::DeadlineExceeded,
            ReplyOutcome::BreakerOpen,
            ReplyOutcome::Reject("no such address 7".to_string()),
        ] {
            roundtrip(Message::Reply { req_id: 7, outcome });
        }
        roundtrip(Message::MetricsReq { req_id: 9 });
        roundtrip(Message::MetricsReply {
            req_id: 9,
            json: "{\"submitted\":4}".to_string(),
        });
        roundtrip(Message::Ping { nonce: 77 });
        roundtrip(Message::Pong {
            nonce: 77,
            processed: 123,
        });
        roundtrip(Message::Shutdown);
        roundtrip(Message::Invalidate {
            req_id: 5,
            address: 11,
        });
        roundtrip(Message::InvalidateReply {
            req_id: 5,
            generation: 2,
        });
    }

    #[test]
    fn crc_flip_is_detected() {
        let mut frame = encode_frame(&Message::Ping { nonce: 1 });
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
        assert!(matches!(decode_frame(&frame), Err(FrameError::Crc { .. })));
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut frame = Vec::new();
        push_u32(&mut frame, MAX_FRAME_LEN + 1);
        push_u32(&mut frame, 0);
        frame.extend_from_slice(&[0u8; 16]);
        assert!(matches!(decode_frame(&frame), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn incomplete_frame_asks_for_more() {
        let frame = encode_frame(&Message::Shutdown);
        for cut in 0..frame.len() {
            assert!(decode_frame(&frame[..cut]).unwrap().is_none(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_payload_bytes_are_malformed() {
        let mut payload = Message::Ping { nonce: 1 }.encode();
        payload.push(0);
        assert!(matches!(
            Message::decode(&payload),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn reader_survives_byte_at_a_time_delivery() {
        struct Trickle {
            bytes: Vec<u8>,
            pos: usize,
        }
        impl Read for Trickle {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                if self.pos >= self.bytes.len() {
                    return Ok(0);
                }
                out[0] = self.bytes[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut stream = Vec::new();
        stream.extend_from_slice(MAGIC);
        stream.extend_from_slice(&encode_frame(&Message::Ping { nonce: 7 }));
        stream.extend_from_slice(&encode_frame(&Message::Shutdown));
        let mut reader = FrameReader::new(Trickle {
            bytes: stream,
            pos: 0,
        });
        assert_eq!(
            reader.read_message().unwrap(),
            Some(Message::Ping { nonce: 7 })
        );
        assert_eq!(reader.read_message().unwrap(), Some(Message::Shutdown));
        assert_eq!(reader.read_message().unwrap(), None);
    }

    #[test]
    fn reader_resumes_across_timeouts_without_desync() {
        /// Delivers one byte per read, interleaving a timeout before each.
        struct Flaky {
            bytes: Vec<u8>,
            pos: usize,
            tick: bool,
        }
        impl Read for Flaky {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                self.tick = !self.tick;
                if self.tick {
                    return Err(std::io::Error::new(ErrorKind::WouldBlock, "tick"));
                }
                if self.pos >= self.bytes.len() {
                    return Ok(0);
                }
                out[0] = self.bytes[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut stream = Vec::new();
        stream.extend_from_slice(MAGIC);
        stream.extend_from_slice(&encode_frame(&Message::Classify {
            req_id: 1,
            address: 2,
        }));
        let mut reader = FrameReader::new(Flaky {
            bytes: stream,
            pos: 0,
            tick: false,
        });
        let mut timeouts = 0;
        let msg = loop {
            match reader.read_message() {
                Ok(Some(m)) => break m,
                Ok(None) => panic!("unexpected eof"),
                Err(e) if e.is_timeout() => timeouts += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        assert_eq!(
            msg,
            Message::Classify {
                req_id: 1,
                address: 2
            }
        );
        assert!(timeouts > 0, "flaky stream should have timed out");
    }

    #[test]
    fn truncated_stream_poisons_the_reader() {
        let mut stream = Vec::new();
        stream.extend_from_slice(MAGIC);
        let frame = encode_frame(&Message::Ping { nonce: 1 });
        stream.extend_from_slice(&frame[..frame.len() - 2]);
        let mut reader = FrameReader::new(&stream[..]);
        assert!(matches!(reader.read_message(), Err(FrameError::Truncated)));
        assert!(matches!(
            reader.read_message(),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut stream = Vec::new();
        stream.extend_from_slice(b"BJRNL v1"); // right length, wrong protocol
        stream.extend_from_slice(&encode_frame(&Message::Shutdown));
        let mut reader = FrameReader::new(&stream[..]);
        assert!(matches!(reader.read_message(), Err(FrameError::BadMagic)));
    }
}
