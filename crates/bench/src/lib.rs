//! Shared experiment harness for the table/figure reproduction binaries.
//!
//! Every binary accepts `--scale small|paper` (default `paper`): `small`
//! finishes in seconds for smoke-testing; `paper` matches the evaluation
//! scale recorded in EXPERIMENTS.md.

use baclassifier::config::ConstructionConfig;
use baclassifier::construction::construct_dataset_graphs;
use baclassifier::features::graph_tensors;
use baclassifier::models::{GraphModel, PreparedGraph};
use btcsim::actors::retail::RetailConfig;
use btcsim::{AddressRecord, Dataset, SimConfig, Simulator};

/// Experiment scale knobs.
#[derive(Clone, Debug)]
pub struct ExpScale {
    /// Simulated blocks.
    pub blocks: u64,
    /// Stratified sample size fed to train+test (paper: ~10,000).
    pub sample: usize,
    /// Minimum transactions for an address to be classifiable.
    pub min_txs: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Cap on slice graphs per address in graph-level training sets.
    pub max_slices_per_address: usize,
}

impl ExpScale {
    /// Seconds-scale smoke configuration.
    pub fn small() -> Self {
        Self {
            blocks: 120,
            sample: 250,
            min_txs: 2,
            seed: 42,
            max_slices_per_address: 4,
        }
    }

    /// The scale used for the recorded EXPERIMENTS.md numbers.
    pub fn paper() -> Self {
        Self {
            blocks: 700,
            sample: 1600,
            min_txs: 2,
            seed: 42,
            max_slices_per_address: 6,
        }
    }

    /// Parse from argv: `--scale small|paper`, `--seed N`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = if flag_value(&args, "--scale").as_deref() == Some("small") {
            Self::small()
        } else {
            Self::paper()
        };
        if let Some(seed) = flag_value(&args, "--seed").and_then(|s| s.parse().ok()) {
            scale.seed = seed;
        }
        scale
    }

    /// The simulator configuration for this scale.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            seed: self.seed,
            blocks: self.blocks,
            num_exchanges: 2,
            num_pools: 2,
            num_gambling: 2,
            num_mixers: 2,
            retail: RetailConfig {
                growth_per_block: 1.2,
                ..Default::default()
            },
            miners_per_pool: 400,
            ..Default::default()
        }
    }
}

/// Write a bench result file atomically: temp file in the destination
/// directory, write + fsync, then rename over the target — the same
/// pattern as `ModelArtifact::save`, so a crash or full disk mid-write
/// can never leave a truncated `results/*.json` behind. A trailing
/// newline is appended. Panics on failure (bench binaries treat an
/// unwritable result file as fatal), cleaning up the temp file first.
pub fn write_results_atomic(out: &str, json: &str) {
    use std::io::Write as _;
    let path = std::path::Path::new(out);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .expect("result path has a file name");
    let tmp = path.with_file_name(format!(".{}.tmp.{}", file_name, std::process::id()));
    let write = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(json.as_bytes())?;
        f.write_all(b"\n")?;
        f.flush()?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    };
    if let Err(e) = write() {
        std::fs::remove_file(&tmp).ok();
        panic!("write results to {out}: {e}");
    }
}

/// Fetch `--flag value` from argv.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// True if `--flag` is present in argv.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Run the simulator and extract the full labeled dataset.
pub fn build_full_dataset(scale: &ExpScale) -> (Simulator, Dataset) {
    let sim = Simulator::run_to_completion(scale.sim_config());
    let ds = Dataset::from_simulator(&sim, scale.min_txs);
    (sim, ds)
}

/// The paper's experimental split: stratified sample, then 80/20 split.
pub fn build_split(scale: &ExpScale) -> (Dataset, Dataset) {
    let (_, ds) = build_full_dataset(scale);
    let sample = ds.stratified_sample(scale.sample, scale.seed ^ 0x51ab);
    sample.stratified_split(0.2, scale.seed ^ 0x7e57)
}

/// Construct graphs for records and flatten to a labeled graph-level set for
/// `model`, capping slices per address.
pub fn prepared_graph_set(
    model: &dyn GraphModel,
    records: &[AddressRecord],
    cfg: &ConstructionConfig,
    max_slices: usize,
) -> Vec<(PreparedGraph, usize)> {
    let threads = baclassifier::config::resolve_threads(0);
    let (graphs, _) = construct_dataset_graphs(records, cfg, threads);
    let mut out = Vec::new();
    for (record, gs) in records.iter().zip(&graphs) {
        for g in gs.iter().take(max_slices.max(1)) {
            out.push((model.prepare(&graph_tensors(g)), record.label.index()));
        }
    }
    out
}

/// Embedding sequences for the address-classification experiments
/// (Tables III–IV, Fig. 6): a GFN is trained on the train split's slice
/// graphs, then every address becomes its chronological embedding list.
pub struct EmbeddedSplit {
    pub train: Vec<(Vec<numnet::Matrix>, usize)>,
    pub test: Vec<(Vec<numnet::Matrix>, usize)>,
    pub gfn: baclassifier::models::Gfn,
}

/// Train a GFN on the train split and embed both splits as sequences.
pub fn embedded_split(
    scale: &ExpScale,
    train: &Dataset,
    test: &Dataset,
    cfg: &ConstructionConfig,
    gnn_epochs: usize,
) -> EmbeddedSplit {
    use baclassifier::features::NODE_FEAT_DIM;
    use baclassifier::models::{Gfn, GraphModel};
    use baclassifier::train::{train_graph_model, TrainParams};

    let gfn = Gfn::new(NODE_FEAT_DIM, 2, 64, 32, scale.seed);
    let train_graphs = prepared_graph_set(&gfn, &train.records, cfg, scale.max_slices_per_address);
    let _ = train_graph_model(
        &gfn,
        &train_graphs,
        &[],
        TrainParams {
            epochs: gnn_epochs,
            learning_rate: 0.01,
            batch_size: 8,
            seed: scale.seed,
        },
    );

    let embed = |records: &[AddressRecord]| -> Vec<(Vec<numnet::Matrix>, usize)> {
        let threads = baclassifier::config::resolve_threads(0);
        let (graphs, _) = construct_dataset_graphs(records, cfg, threads);
        records
            .iter()
            .zip(&graphs)
            .filter(|(_, gs)| !gs.is_empty())
            .map(|(r, gs)| {
                let seq: Vec<numnet::Matrix> = gs
                    .iter()
                    .take(scale.max_slices_per_address.max(1))
                    .map(|g| {
                        let prep = gfn.prepare(&graph_tensors(g));
                        let tape = numnet::Tape::new();
                        gfn.embed(&tape, &prep).value()
                    })
                    .collect();
                (seq, r.label.index())
            })
            .collect()
    };
    EmbeddedSplit {
        train: embed(&train.records),
        test: embed(&test.records),
        gfn,
    }
}

/// Render one header + rows table with fixed-width columns.
pub fn print_rows(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, |c| c.len()))
                .chain([h.len()])
                .max()
                .unwrap_or(8)
        })
        .collect();
    let fmt_row = |cells: Vec<String>| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(header.iter().map(|s| s.to_string()).collect())
    );
    for r in rows {
        println!("{}", fmt_row(r.clone()));
    }
}

/// Format a float to 4 decimal places (the paper's table precision).
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_produces_usable_split() {
        let scale = ExpScale::small();
        let (train, test) = build_split(&scale);
        assert!(train.len() > 50, "train {}", train.len());
        assert!(test.len() > 10, "test {}", test.len());
        assert!(train.class_counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["prog", "--scale", "small", "--seed", "9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--scale").as_deref(), Some("small"));
        assert_eq!(flag_value(&args, "--seed").as_deref(), Some("9"));
        assert_eq!(flag_value(&args, "--missing"), None);
    }
}
