//! Chaos benchmark: what resilience costs, written to
//! `results/chaos_bench.json`.
//!
//! ```text
//! chaos_bench [--seed 42] [--min-txs 3] [--requests 2000] [--zipf 1.1]
//!             [--panics 5] [--out results/chaos_bench.json]
//! ```
//!
//! Two phases, both driven by a deterministic [`ScriptedFaultPlan`]:
//!
//! 1. **Recovery latency** — panics are injected into a single-worker pool
//!    at known batch numbers during steady traffic; each sample is the time
//!    from observing the `WorkerFailed` outcome to the next successful
//!    model-path response (supervisor unwind + backoff + replica rebuild).
//! 2. **Degraded-mode throughput** — the circuit breaker is tripped by a
//!    scripted panic, then a zipf burst is pushed through the
//!    nearest-centroid fallback; the figure is how much capacity survives
//!    when the model path is down.

use bac_bench::flag_value;
use baclassifier::{BaClassifier, BacConfig};
use baserve::{
    Engine, EngineConfig, EngineHooks, Fallback, FaultPlan, FeatureFallback, ScriptedFaultPlan,
    ServeError, Ticket,
};
use btcsim::dist::ZipfSampler;
use btcsim::{Dataset, SimConfig, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = flag_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let min_txs: usize = flag_value(&args, "--min-txs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let requests: usize = flag_value(&args, "--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);
    let zipf_s: f64 = flag_value(&args, "--zipf")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.1);
    let panics: usize = flag_value(&args, "--panics")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let out = flag_value(&args, "--out").unwrap_or_else(|| "results/chaos_bench.json".into());

    eprintln!("[chaos_bench] fitting a fast model (seed {seed})…");
    let sim = Simulator::run_to_completion(SimConfig::tiny(seed));
    let dataset = Dataset::from_simulator(&sim, min_txs);
    let mut clf = BaClassifier::new(BacConfig::fast());
    clf.fit(&dataset);
    let artifact = Arc::new(clf.to_artifact().expect("fitted classifier exports"));
    let fallback = Arc::new(FeatureFallback::fit(&dataset.records));

    // Phase 1: recovery latency. Single worker, sequential traffic, so
    // batch numbers equal request numbers and the panic points are exact.
    let panic_batches: Vec<u64> = (0..panics as u64).map(|i| 10 + 25 * i).collect();
    let plan = Arc::new(ScriptedFaultPlan::panics(0, &panic_batches));
    let engine = Engine::with_hooks(
        Arc::clone(&artifact),
        EngineConfig {
            workers: 1,
            breaker_threshold: 0, // keep the breaker out of the measurement
            restart_backoff: Duration::from_millis(2),
            ..EngineConfig::default()
        },
        EngineHooks {
            fault_plan: Arc::clone(&plan) as Arc<dyn FaultPlan>,
            ..EngineHooks::default()
        },
    )
    .expect("artifact matches its own model");
    let sampler = ZipfSampler::new(dataset.len(), zipf_s);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a0);
    let steady = *panic_batches.last().unwrap() as usize + 25;
    let mut recovery_us: Vec<u64> = Vec::with_capacity(panics);
    let mut failed_at: Option<Instant> = None;
    for _ in 0..steady {
        let idx = sampler.sample(&mut rng);
        match engine.classify(dataset.records[idx].clone()) {
            Ok(_) => {
                if let Some(t0) = failed_at.take() {
                    recovery_us.push(t0.elapsed().as_micros() as u64);
                }
            }
            Err(ServeError::WorkerFailed) => failed_at = Some(Instant::now()),
            Err(e) => panic!("unexpected outcome during recovery phase: {e}"),
        }
    }
    engine.shutdown();
    assert_eq!(plan.injected() as usize, panics, "script must fully fire");
    assert_eq!(recovery_us.len(), panics, "each panic must be recovered");
    recovery_us.sort_unstable();
    let mean_us = recovery_us.iter().sum::<u64>() as f64 / recovery_us.len() as f64;
    let p50_us = recovery_us[(recovery_us.len() - 1) / 2];
    let max_us = *recovery_us.last().unwrap();
    eprintln!(
        "[chaos_bench] recovery over {panics} panics: mean {mean_us:.0}µs, \
         p50 {p50_us}µs, max {max_us}µs"
    );

    // Phase 2: degraded-mode throughput. One scripted panic trips the
    // breaker (threshold 1, cooldown far beyond the run), then the whole
    // burst is answered by the fallback.
    let engine = Engine::with_hooks(
        artifact,
        EngineConfig {
            workers: 1,
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_secs(3600),
            restart_backoff: Duration::from_millis(1),
            ..EngineConfig::default()
        },
        EngineHooks {
            fault_plan: Arc::new(ScriptedFaultPlan::panics(0, &[1])) as Arc<dyn FaultPlan>,
            fallback: Some(fallback as Arc<dyn Fallback>),
        },
    )
    .expect("artifact matches its own model");
    let trip = engine.classify(dataset.records[0].clone());
    assert!(
        matches!(trip, Err(ServeError::WorkerFailed)),
        "scripted panic must trip the breaker, got {trip:?}"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0xde5);
    let window = 64usize;
    let mut in_flight: Vec<Ticket> = Vec::with_capacity(window);
    let t = Instant::now();
    let mut degraded = 0usize;
    for _ in 0..requests {
        let idx = sampler.sample(&mut rng);
        match engine.submit(dataset.records[idx].clone()) {
            Ok(ticket) => in_flight.push(ticket),
            Err(e) => panic!("degraded burst submission failed: {e}"),
        }
        if in_flight.len() >= window {
            for ticket in in_flight.drain(..) {
                let r = ticket.wait().expect("degraded request succeeds");
                assert!(r.degraded, "breaker open: every answer is fallback-served");
                degraded += 1;
            }
        }
    }
    for ticket in in_flight.drain(..) {
        let r = ticket.wait().expect("degraded request succeeds");
        assert!(r.degraded);
        degraded += 1;
    }
    let elapsed = t.elapsed();
    let snapshot = engine.metrics();
    engine.shutdown();
    let qps = degraded as f64 / elapsed.as_secs_f64();
    eprintln!(
        "[chaos_bench] degraded burst: {degraded} requests in {:.2}s = {qps:.0} req/s",
        elapsed.as_secs_f64()
    );

    let json = format!(
        "{{\"seed\":{seed},\"addresses\":{},\
         \"recovery\":{{\"panics\":{panics},\"mean_us\":{mean_us:.1},\
         \"p50_us\":{p50_us},\"max_us\":{max_us}}},\
         \"degraded\":{{\"requests\":{degraded},\"zipf_s\":{zipf_s},\
         \"elapsed_s\":{:.3},\"qps\":{qps:.1},\"metrics\":{}}}}}",
        dataset.len(),
        elapsed.as_secs_f64(),
        snapshot.to_json()
    );
    bac_bench::write_results_atomic(&out, &json);
    println!("wrote {out}");
}
