//! Fig. 6 — address-classification overhead: held-out weighted F1 of the
//! six classification heads per training epoch and per unit of wall-clock.

use bac_bench::{build_split, embedded_split, f4, flag_value, print_rows, ExpScale};
use baclassifier::classify::all_heads;
use baclassifier::config::ConstructionConfig;
use baclassifier::train::{train_sequence_head, TrainLog, TrainParams};

fn main() {
    let scale = ExpScale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let epochs: usize = flag_value(&args, "--epochs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let gnn_epochs: usize = flag_value(&args, "--gnn-epochs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    println!("# Fig. 6 — classification-head training curves over {epochs} epochs");

    let cfg = ConstructionConfig::default();
    let (train, test) = build_split(&scale);
    eprintln!("[fig6] training GFN + embedding…");
    let split = embedded_split(&scale, &train, &test, &cfg, gnn_epochs);

    let mut logs: Vec<TrainLog> = Vec::new();
    for head in all_heads(32, 32, scale.seed) {
        eprintln!("[fig6] training {}…", head.name());
        logs.push(train_sequence_head(
            head.as_ref(),
            &split.train,
            &split.test,
            TrainParams {
                epochs,
                learning_rate: 0.01,
                batch_size: 8,
                seed: scale.seed,
            },
        ));
    }

    let names: Vec<&str> = logs.iter().map(|l| l.model.as_str()).collect();
    let mut header = vec!["Epoch"];
    header.extend(&names);
    let mut rows = Vec::new();
    for e in 0..epochs {
        let mut row = vec![e.to_string()];
        for log in &logs {
            row.push(f4(log.points[e].test_f1));
        }
        rows.push(row);
    }
    print_rows("Fig. 6 (left): test weighted F1 vs epoch", &header, &rows);

    let mut rows = Vec::new();
    for log in &logs {
        for p in &log.points {
            rows.push(vec![
                log.model.clone(),
                format!("{:.2}", p.elapsed.as_secs_f64()),
                f4(p.test_f1),
            ]);
        }
    }
    print_rows(
        "Fig. 6 (right): test weighted F1 vs training seconds",
        &["Model", "Seconds", "F1"],
        &rows,
    );

    for log in &logs {
        println!(
            "{:>14}: final F1 {} in {:.2}s",
            log.model,
            f4(log.final_f1()),
            log.total_time().as_secs_f64()
        );
    }
    println!("\npaper shape check: LSTM+MLP consistently best across epochs; pooling heads trail");
}
