//! Table I — dataset statistics: labeled addresses per behavior class.
//!
//! Regenerates the paper's dataset-statistics table from the simulated
//! economy, alongside the paper's published counts for shape comparison.

use bac_bench::{build_full_dataset, f4, print_rows, ExpScale};
use btcsim::Label;

fn main() {
    let scale = ExpScale::from_args();
    println!(
        "# Table I — dataset statistics (scale: {} blocks)",
        scale.blocks
    );
    let (sim, ds) = build_full_dataset(&scale);
    let counts = ds.class_counts();
    let total: usize = counts.iter().sum();

    // Paper's published counts (2,138,657 addresses total).
    let paper = [912_322usize, 133_119, 377_559, 715_657];
    let paper_total: usize = paper.iter().sum();

    let mut rows = Vec::new();
    for label in Label::ALL {
        let i = label.index();
        rows.push(vec![
            label.name().to_string(),
            counts[i].to_string(),
            f4(counts[i] as f64 / total.max(1) as f64),
            paper[i].to_string(),
            f4(paper[i] as f64 / paper_total as f64),
        ]);
    }
    rows.push(vec![
        "Total".into(),
        total.to_string(),
        f4(1.0),
        paper_total.to_string(),
        f4(1.0),
    ]);
    print_rows(
        "Table I: labeled addresses per class (ours vs paper)",
        &["Address Label", "Ours", "Ours %", "Paper", "Paper %"],
        &rows,
    );

    println!(
        "\nchain: {} blocks, {} transactions, {} distinct addresses",
        sim.chain().height(),
        sim.chain().num_transactions(),
        sim.chain().num_addresses(),
    );
    println!(
        "labeled (≥{} txs): {} of {} labeled addresses",
        scale.min_txs,
        total,
        sim.labels().len()
    );
}
