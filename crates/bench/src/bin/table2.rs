//! Table II — graph representation model comparison: GFN vs DiffPool vs GCN
//! (graph-level classification of compressed slice graphs) against the nine
//! traditional ML models on flattened features.
//!
//! Ablation flags: `--gfn-k N`, `--slice-size N`, `--no-augment`,
//! `--no-compress`, `--epochs N`; `--per-class` prints per-class metrics
//! under the weighted-average table.

use bac_bench::{build_split, f4, flag_value, has_flag, prepared_graph_set, print_rows, ExpScale};
use baclassifier::config::ConstructionConfig;
use baclassifier::features::NODE_FEAT_DIM;
use baclassifier::models::{DiffPool, Gcn, Gfn, GraphModel};
use baclassifier::train::{evaluate_graph_model, train_graph_model, TrainParams};
use baselines::{
    flat_dataset, AnnClassifier, BernoulliNb, Classifier, DecisionTree, GaussianNb, Gbdt, Knn,
    LinearSvm, LogisticRegression, Scaler, XgBoost,
};

fn main() {
    let scale = ExpScale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let gfn_k: usize = flag_value(&args, "--gfn-k")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let epochs: usize = flag_value(&args, "--epochs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(15);
    let mut cfg = ConstructionConfig::default();
    if let Some(s) = flag_value(&args, "--slice-size").and_then(|v| v.parse().ok()) {
        cfg.slice_size = s;
    }
    cfg.augment = !has_flag("--no-augment");
    cfg.compress = !has_flag("--no-compress");
    println!(
        "# Table II — graph representation models (k={gfn_k}, slice={}, augment={}, compress={}, epochs={epochs})",
        cfg.slice_size, cfg.augment, cfg.compress
    );

    let per_class = has_flag("--per-class");
    let (train, test) = build_split(&scale);
    println!("train {} / test {} addresses", train.len(), test.len());

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut class_rows: Vec<Vec<String>> = Vec::new();
    let class_names = ["Exchange", "Mining", "Gambling", "Service"];
    let mut push_class_rows = |name: &str, report: &baclassifier::metrics::ClassificationReport| {
        for (i, m) in report.per_class.iter().enumerate() {
            class_rows.push(vec![
                name.to_string(),
                class_names[i].to_string(),
                f4(m.precision),
                f4(m.recall),
                f4(m.f1),
            ]);
        }
    };

    // --- GNNs on slice graphs ---
    let gnns: Vec<Box<dyn GraphModel>> = vec![
        Box::new(Gfn::new(NODE_FEAT_DIM, gfn_k, 64, 32, scale.seed)),
        Box::new(DiffPool::new(NODE_FEAT_DIM, 64, 8, 32, scale.seed)),
        Box::new(Gcn::new(NODE_FEAT_DIM, 64, 32, scale.seed)),
    ];
    for model in &gnns {
        eprintln!("[table2] preparing graphs for {}…", model.name());
        let train_set = prepared_graph_set(
            model.as_ref(),
            &train.records,
            &cfg,
            scale.max_slices_per_address,
        );
        let test_set = prepared_graph_set(
            model.as_ref(),
            &test.records,
            &cfg,
            scale.max_slices_per_address,
        );
        eprintln!(
            "[table2] training {} on {} graphs ({} test)…",
            model.name(),
            train_set.len(),
            test_set.len()
        );
        let log = train_graph_model(
            model.as_ref(),
            &train_set,
            &[],
            TrainParams {
                epochs,
                learning_rate: 0.01,
                batch_size: 8,
                seed: scale.seed,
            },
        );
        let report = evaluate_graph_model(model.as_ref(), &test_set);
        eprintln!("[table2] {} done in {:?}", model.name(), log.total_time());
        push_class_rows(model.name(), &report);
        rows.push(vec![
            format!("GNN {}", model.name()),
            f4(report.weighted_precision),
            f4(report.weighted_recall),
            f4(report.weighted_f1),
        ]);
    }

    // --- Traditional ML on flattened features ---
    let (x_train_raw, y_train) = flat_dataset(&train.records);
    let (x_test_raw, y_test) = flat_dataset(&test.records);
    let scaler = Scaler::fit(&x_train_raw);
    let x_train = scaler.transform(&x_train_raw);
    let x_test = scaler.transform(&x_test_raw);

    let mut models: Vec<Box<dyn Classifier>> = vec![
        Box::new(LogisticRegression::default()),
        Box::new(AnnClassifier::default()),
        Box::new(LinearSvm::default()),
        Box::new(BernoulliNb::default()),
        Box::new(GaussianNb::default()),
        Box::new(Knn::default()),
        Box::new(DecisionTree::default()),
        Box::new(Gbdt::default()),
        Box::new(XgBoost::default()),
    ];
    for model in models.iter_mut() {
        eprintln!("[table2] fitting {}…", model.name());
        model.fit(&x_train, &y_train);
        let report = baselines::evaluate(model.as_ref(), &x_test, &y_test);
        push_class_rows(model.name(), &report);
        rows.push(vec![
            format!("ML  {}", model.name()),
            f4(report.weighted_precision),
            f4(report.weighted_recall),
            f4(report.weighted_f1),
        ]);
    }

    print_rows(
        "Table II: model comparison (weighted avg over classes)",
        &["Model", "Precision", "Recall", "F1-score"],
        &rows,
    );
    if per_class {
        print_rows(
            "Table II (detail): per-class metrics",
            &["Model", "Type", "Precision", "Recall", "F1-score"],
            &class_rows,
        );
    }
    println!("\npaper shape check: GFN best (0.9769), GCN > DiffPool, GBDT best ML (0.9585), LR/NB weakest");
}
