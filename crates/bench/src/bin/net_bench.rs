//! Network fleet benchmark: real `basharded --worker` *processes* behind
//! real TCP sockets, driven by a `remote_router` frontend — the full
//! multi-process deployment, measured and fault-injected, with results
//! written to `results/net_bench.json`.
//!
//! ```text
//! net_bench [--smoke] [--seed 42] [--shards 2] [--requests N]
//!           [--zipf 1.1] [--min-txs 3] [--out results/net_bench.json]
//! ```
//!
//! Four phases against one spawned fleet:
//!
//! * **Identity** — every dataset address classified through the remote
//!   fleet must match an in-process engine over the same artifact, label
//!   for label (the byte-identical-serving gate, now across process
//!   boundaries).
//! * **Burst** — a zipf-distributed request burst through the fleet;
//!   client-observed p50/p95/p99 (submit → response, network included)
//!   and throughput.
//! * **Kill** — SIGKILL one worker mid-traffic: every in-flight and
//!   subsequent request must settle in bounded time (degraded through the
//!   fallback or a clean shed — `requests_lost` counts hangs and must be
//!   zero), while the surviving shard keeps answering at full fidelity.
//! * **Recover** — respawn the worker on the same port; the lane
//!   reconnects under backoff and the time back to a full-fidelity answer
//!   is recorded.
//!
//! The workers are the production binary run exactly as an operator would
//! run it; the bench finds `basharded` next to its own executable, so
//! `cargo build --release` then `./target/release/net_bench --smoke` is
//! the whole recipe.

use bac_bench::{flag_value, write_results_atomic};
use baclassifier::{BaClassifier, BacConfig, ModelArtifact, ShardMap};
use banet::RemoteShardConfig;
use baserve::session::dataset_by_id;
use baserve::{Fallback, FeatureFallback, ServeError};
use bashard::{remote_router, wait_fleet_up, ShardRouter};
use btcsim::dist::ZipfSampler;
use btcsim::AddressRecord;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::BufRead;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Freshly initialized weights exported through the NNIO stream — a valid
/// fitted-state artifact; identity needs determinism, not accuracy.
fn untrained_artifact() -> Arc<ModelArtifact> {
    let cfg = BacConfig::fast();
    let clf = BaClassifier::new(cfg.clone());
    let path = std::env::temp_dir().join(format!("net_bench_weights_{}", std::process::id()));
    clf.save_weights(&path).expect("write weights");
    let weights = numnet::read_matrices(&mut std::fs::File::open(&path).expect("reopen weights"))
        .expect("read weights");
    std::fs::remove_file(&path).ok();
    Arc::new(ModelArtifact {
        config: cfg,
        weights,
    })
}

fn percentile_us(samples: &mut [u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((samples.len() as f64 * q).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// A free loopback port: bind ephemeral, read the assignment, release.
/// The worker re-binds it with `SO_REUSEADDR` and a short retry, so the
/// tiny race window is harmless.
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .expect("bind ephemeral")
        .local_addr()
        .expect("bound addr")
        .port()
}

/// Spawn one `basharded --worker` process and wait for its
/// `listening <addr>` line; returns the child and the address it serves.
fn spawn_worker(
    basharded: &Path,
    artifact_path: &Path,
    index: u32,
    shards: u32,
    port: u16,
    seed: u64,
    min_txs: usize,
) -> (Child, String) {
    let addr = format!("127.0.0.1:{port}");
    let mut child = Command::new(basharded)
        .arg("--artifact")
        .arg(artifact_path)
        .args(["--worker", &index.to_string()])
        .args(["--shards", &shards.to_string()])
        .args(["--listen", &addr])
        .args(["--seed", &seed.to_string()])
        .args(["--min-txs", &min_txs.to_string()])
        .arg("--no-fallback")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn basharded worker");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read worker banner");
    let bound = line
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected worker banner: {line:?}"))
        .trim()
        .to_string();
    (child, bound)
}

/// Drive `n` zipf requests through the router with a FIFO in-flight
/// window; returns (client latencies µs, settled count, shed count).
fn burst(
    router: &ShardRouter,
    records: &[AddressRecord],
    n: usize,
    zipf_s: f64,
    traffic_seed: u64,
    window: usize,
) -> (Vec<u64>, usize, usize) {
    let sampler = ZipfSampler::new(records.len(), zipf_s);
    let mut rng = StdRng::seed_from_u64(traffic_seed);
    let mut in_flight = std::collections::VecDeque::new();
    let mut latencies = Vec::with_capacity(n);
    let mut settled = 0usize;
    let mut shed = 0usize;
    let settle_one = |(ticket, at): (baserve::Ticket, Instant),
                      latencies: &mut Vec<u64>,
                      settled: &mut usize,
                      shed: &mut usize| {
        match ticket.wait() {
            Ok(_) => {
                *settled += 1;
                latencies.push(at.elapsed().as_micros() as u64);
            }
            Err(_) => *shed += 1,
        }
    };
    for _ in 0..n {
        let idx = sampler.sample(&mut rng);
        match router.submit(records[idx].clone()) {
            Ok(ticket) => in_flight.push_back((ticket, Instant::now())),
            Err(_) => shed += 1,
        }
        if in_flight.len() >= window {
            let head = in_flight.pop_front().unwrap();
            settle_one(head, &mut latencies, &mut settled, &mut shed);
        }
    }
    for head in in_flight {
        settle_one(head, &mut latencies, &mut settled, &mut shed);
    }
    (latencies, settled, shed)
}

/// Poll until the fleet answers `record` at full fidelity; panics past
/// `timeout` (a hang here is the failure the bench exists to catch).
fn wait_full_fidelity(
    router: &ShardRouter,
    record: &AddressRecord,
    timeout: Duration,
    what: &str,
) -> Duration {
    let start = Instant::now();
    loop {
        assert!(
            start.elapsed() < timeout,
            "{what}: no recovery within {timeout:?}"
        );
        if let Ok(ticket) = router.submit(record.clone()) {
            if let Ok(response) = ticket.wait() {
                if !response.degraded {
                    return start.elapsed();
                }
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed: u64 = flag_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let shards: u32 = flag_value(&args, "--shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let requests: usize = flag_value(&args, "--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 400 } else { 5000 });
    let zipf_s: f64 = flag_value(&args, "--zipf")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.1);
    let min_txs: usize = flag_value(&args, "--min-txs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let out = flag_value(&args, "--out").unwrap_or_else(|| "results/net_bench.json".into());

    let basharded: PathBuf = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .join("basharded");
    assert!(
        basharded.exists(),
        "{} not found — build the workspace first",
        basharded.display()
    );

    let artifact = untrained_artifact();
    let artifact_path = std::env::temp_dir().join(format!("net_bench_{}.bart", std::process::id()));
    artifact.save(&artifact_path).expect("save artifact");

    let by_id = dataset_by_id(seed, min_txs);
    let mut records: Vec<AddressRecord> = by_id.values().cloned().collect();
    records.sort_by_key(|r| r.address.0);
    assert!(
        !records.is_empty(),
        "dataset rebuilt from seed {seed} is empty"
    );
    eprintln!(
        "[net_bench] {} addresses, {shards} workers, {requests} requests",
        records.len()
    );

    // --- spawn the fleet -------------------------------------------------
    let ports: Vec<u16> = (0..shards).map(|_| free_port()).collect();
    let spawn_at = |i: u32| {
        spawn_worker(
            &basharded,
            &artifact_path,
            i,
            shards,
            ports[i as usize],
            seed,
            min_txs,
        )
    };
    let t_spawn = Instant::now();
    let mut fleet: Vec<Child> = Vec::new();
    let mut addrs: Vec<String> = Vec::new();
    for i in 0..shards {
        let (child, addr) = spawn_at(i);
        fleet.push(child);
        addrs.push(addr);
    }
    let fallback: Arc<dyn Fallback> = Arc::new(FeatureFallback::fit(&records));
    let config = RemoteShardConfig {
        max_in_flight: 4096,
        backoff: Duration::from_millis(20),
        backoff_max: Duration::from_millis(500),
        probe_interval: Duration::from_millis(25),
        ..RemoteShardConfig::default()
    };
    let (router, health) = remote_router(&addrs, config, Some(fallback));
    assert!(
        wait_fleet_up(&health, Duration::from_secs(30)),
        "fleet never converged"
    );
    let spawn_s = t_spawn.elapsed().as_secs_f64();
    eprintln!(
        "[net_bench] fleet of {shards} up in {spawn_s:.2}s: {}",
        addrs.join(", ")
    );

    // --- phase 1: identity across process boundaries ---------------------
    let direct = BaClassifier::from_artifact(&artifact).expect("artifact loads in-process");
    let identity_sample = if smoke {
        records.len().min(64)
    } else {
        records.len()
    };
    let responses = router.classify_batch(&records[..identity_sample]);
    let mut checked = 0usize;
    for (record, response) in records[..identity_sample].iter().zip(responses) {
        let response = response.expect("identity batch within admission budget");
        let want = direct.predict(record).expect("records have transactions");
        assert_eq!(
            response.label, want,
            "remote fleet diverged from the in-process engine on address {}",
            record.address.0
        );
        checked += 1;
    }
    eprintln!("[net_bench] identity: {checked}/{checked} labels match in-process");

    // --- phase 2: zipf burst ---------------------------------------------
    let t_burst = Instant::now();
    let (mut latencies, settled, shed) = burst(&router, &records, requests, zipf_s, 1, 64);
    let burst_s = t_burst.elapsed().as_secs_f64();
    let rps = settled as f64 / burst_s.max(1e-9);
    let (p50, p95, p99) = (
        percentile_us(&mut latencies, 0.50),
        percentile_us(&mut latencies, 0.95),
        percentile_us(&mut latencies, 0.99),
    );
    eprintln!(
        "[net_bench] burst: {settled} served ({shed} shed) in {burst_s:.2}s = {rps:.0} rps, \
         p50 {p50}µs p95 {p95}µs p99 {p99}µs"
    );

    // --- phase 3: SIGKILL a worker mid-traffic ---------------------------
    let map = ShardMap::new(shards);
    let victim_shard = 0u32;
    let victim_record = records
        .iter()
        .find(|r| map.shard_of(r.address) == victim_shard)
        .expect("some address lands on the victim shard")
        .clone();
    let survivor_record = records
        .iter()
        .find(|r| map.shard_of(r.address) != victim_shard)
        .expect("some address lands elsewhere")
        .clone();

    fleet[victim_shard as usize].kill().expect("kill worker");
    fleet[victim_shard as usize].wait().expect("reap worker");
    let t_kill = Instant::now();

    // Every request in the outage window must settle — degraded, shed, or
    // (while the lane flaps) a clean error. A hang would stall this loop
    // and trip the deadline; `requests_lost` stays 0 iff nothing hangs.
    let outage_requests = if smoke { 100 } else { 500 };
    let mut degraded_answers = 0usize;
    let mut outage_settled = 0usize;
    let deadline = Duration::from_secs(30);
    for _ in 0..outage_requests {
        assert!(
            t_kill.elapsed() < deadline,
            "outage traffic did not settle within {deadline:?} of the kill"
        );
        match router.submit(victim_record.clone()) {
            Ok(ticket) => match ticket.wait() {
                Ok(response) => {
                    outage_settled += 1;
                    if response.degraded {
                        degraded_answers += 1;
                    }
                }
                Err(
                    ServeError::WorkerFailed | ServeError::DeadlineExceeded | ServeError::QueueFull,
                ) => outage_settled += 1,
                Err(e) => panic!("unexpected outage error: {e}"),
            },
            Err(ServeError::QueueFull | ServeError::WorkerFailed) => outage_settled += 1,
            Err(e) => panic!("unexpected outage admission error: {e}"),
        }
    }
    let requests_lost = outage_requests - outage_settled;
    assert_eq!(requests_lost, 0, "requests hung during the outage");
    assert!(
        degraded_answers > 0,
        "fallback never engaged during the outage"
    );
    let survivor = router
        .submit(survivor_record.clone())
        .expect("survivor admits")
        .wait()
        .expect("survivor answers");
    assert!(!survivor.degraded, "surviving shard answered degraded");
    let down_detect_s = t_kill.elapsed().as_secs_f64();
    eprintln!(
        "[net_bench] kill: {outage_settled}/{outage_requests} settled, \
         {degraded_answers} degraded, 0 lost ({down_detect_s:.2}s outage window)"
    );

    // --- phase 4: respawn on the same port, measure recovery -------------
    let t_respawn = Instant::now();
    let (revived, revived_addr) = spawn_at(victim_shard);
    assert_eq!(
        revived_addr, addrs[victim_shard as usize],
        "respawn moved ports"
    );
    fleet[victim_shard as usize] = revived;
    assert!(
        wait_fleet_up(&health, Duration::from_secs(30)),
        "fleet never re-converged after respawn"
    );
    let recovery = wait_full_fidelity(
        &router,
        &victim_record,
        Duration::from_secs(30),
        "post-respawn",
    );
    let recovery_s = t_respawn.elapsed().as_secs_f64();
    let merged = router.metrics();
    assert!(merged.reconnects_total >= 1, "recovery did not reconnect");
    eprintln!(
        "[net_bench] recover: full fidelity {recovery:?} after respawn \
         ({} reconnects, {} degraded-routed total)",
        merged.reconnects_total,
        router.degraded_routed()
    );

    // --- teardown + report ----------------------------------------------
    let degraded_routed = router.degraded_routed();
    let json = format!(
        "{{\"smoke\":{smoke},\"seed\":{seed},\"shards\":{shards},\"addresses\":{},\
         \"fleet_spawn_s\":{spawn_s:.3},\"identity_checked\":{checked},\
         \"burst\":{{\"requests\":{requests},\"settled\":{settled},\"shed\":{shed},\
         \"wall_s\":{burst_s:.3},\"rps\":{rps:.1},\"p50_us\":{p50},\"p95_us\":{p95},\
         \"p99_us\":{p99}}},\
         \"kill\":{{\"outage_requests\":{outage_requests},\"settled\":{outage_settled},\
         \"degraded_answers\":{degraded_answers},\"requests_lost\":{requests_lost},\
         \"outage_window_s\":{down_detect_s:.3}}},\
         \"recover\":{{\"recovery_s\":{recovery_s:.3},\
         \"reconnects_total\":{},\"degraded_routed\":{degraded_routed}}}}}",
        records.len(),
        merged.reconnects_total,
    );
    router.shutdown();
    for child in &mut fleet {
        child.kill().ok();
        child.wait().ok();
    }
    std::fs::remove_file(&artifact_path).ok();
    write_results_atomic(&out, &json);
    eprintln!("[net_bench] wrote {out}");
}
