//! Table IV — BAClassifier vs prior bitcoin address classifiers: BitScope
//! (multi-resolution clustering), Lee et al. with Random Forest, and Lee et
//! al. with ANN, with per-class precision/recall/F1.

use bac_bench::{build_split, f4, flag_value, print_rows, ExpScale};
use baclassifier::metrics::ConfusionMatrix;
use baclassifier::models::NUM_CLASSES;
use baclassifier::{BaClassifier, BacConfig};
use baselines::{BitScope, LeeClassifier};
use btcsim::{AddressRecord, Label};

fn report_rows(rows: &mut Vec<Vec<String>>, name: &str, y_true: &[usize], y_pred: &[usize]) {
    let report = ConfusionMatrix::from_predictions(NUM_CLASSES, y_true, y_pred).report();
    for label in Label::ALL {
        let m = report.per_class[label.index()];
        rows.push(vec![
            name.to_string(),
            label.name().to_string(),
            f4(m.precision),
            f4(m.recall),
            f4(m.f1),
        ]);
    }
    rows.push(vec![
        name.to_string(),
        "Weighted Avg".into(),
        f4(report.weighted_precision),
        f4(report.weighted_recall),
        f4(report.weighted_f1),
    ]);
}

fn main() {
    let scale = ExpScale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let (train, test) = build_split(&scale);
    println!(
        "# Table IV — classifier comparison (train {} / test {})",
        train.len(),
        test.len()
    );
    let y_true: Vec<usize> = test.records.iter().map(|r| r.label.index()).collect();
    let mut rows: Vec<Vec<String>> = Vec::new();

    // BAClassifier (full pipeline).
    let mut cfg = BacConfig::default();
    cfg.model.gnn_epochs = flag_value(&args, "--gnn-epochs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    cfg.model.head_epochs = flag_value(&args, "--head-epochs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    cfg.model.max_slices = scale.max_slices_per_address;
    eprintln!("[table4] fitting BAClassifier…");
    let mut bac = BaClassifier::new(cfg);
    let fit = bac.fit(&train);
    eprintln!(
        "[table4] BAClassifier fitted: {} graphs, gnn {:?}, head {:?}",
        fit.num_graphs,
        fit.gnn_log.total_time(),
        fit.head_log.total_time()
    );
    let pred: Vec<usize> = test
        .records
        .iter()
        .map(|r| bac.predict(r).expect("fitted model").index())
        .collect();
    report_rows(&mut rows, "BAClassifier", &y_true, &pred);

    // BitScope.
    eprintln!("[table4] fitting BitScope…");
    let mut bitscope = BitScope::new(scale.seed);
    bitscope.fit_records(&train.records);
    let pred: Vec<usize> = test
        .records
        .iter()
        .map(|r: &AddressRecord| bitscope.predict_record(r))
        .collect();
    report_rows(&mut rows, "BitScope", &y_true, &pred);

    // Lee et al. with both back-ends.
    for mut lee in [
        LeeClassifier::random_forest(scale.seed),
        LeeClassifier::ann(scale.seed),
    ] {
        eprintln!("[table4] fitting {}…", lee.name());
        lee.fit_records(&train.records);
        let pred: Vec<usize> = test.records.iter().map(|r| lee.predict_record(r)).collect();
        let name = lee.name().to_string();
        report_rows(&mut rows, &name, &y_true, &pred);
    }

    print_rows(
        "Table IV: BAClassifier vs prior address classifiers",
        &["Classifier", "Type", "Precision", "Recall", "F1-score"],
        &rows,
    );
    println!("\npaper shape check: BAClassifier ≫ BitScope ≳ Lee-RF ≫ Lee-ANN; Service the hardest class");
}
