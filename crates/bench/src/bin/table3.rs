//! Table III — address classification model comparison: LSTM+MLP (ours),
//! BiLSTM+MLP, Attention+MLP, SUM+MLP, AVG+MLP, MAX+MLP over the same GFN
//! slice-embedding sequences, with per-class precision/recall/F1 and the
//! weighted average.

use bac_bench::{build_split, embedded_split, f4, flag_value, print_rows, ExpScale};
use baclassifier::classify::all_heads;
use baclassifier::config::ConstructionConfig;
use baclassifier::train::{evaluate_sequence_head, train_sequence_head, TrainParams};
use btcsim::Label;

fn main() {
    let scale = ExpScale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let epochs: usize = flag_value(&args, "--epochs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let gnn_epochs: usize = flag_value(&args, "--gnn-epochs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    println!("# Table III — address classification heads (head epochs={epochs}, gnn epochs={gnn_epochs})");

    let cfg = ConstructionConfig::default();
    let (train, test) = build_split(&scale);
    eprintln!(
        "[table3] training GFN and embedding {} train / {} test addresses…",
        train.len(),
        test.len()
    );
    let split = embedded_split(&scale, &train, &test, &cfg, gnn_epochs);

    let mut rows: Vec<Vec<String>> = Vec::new();
    for head in all_heads(32, 32, scale.seed) {
        eprintln!("[table3] training {}…", head.name());
        let log = train_sequence_head(
            head.as_ref(),
            &split.train,
            &[],
            TrainParams {
                epochs,
                learning_rate: 0.01,
                batch_size: 8,
                seed: scale.seed,
            },
        );
        let report = evaluate_sequence_head(head.as_ref(), &split.test);
        eprintln!(
            "[table3] {} finished in {:?}",
            head.name(),
            log.total_time()
        );
        for label in Label::ALL {
            let m = report.per_class[label.index()];
            rows.push(vec![
                head.name().to_string(),
                label.name().to_string(),
                f4(m.precision),
                f4(m.recall),
                f4(m.f1),
            ]);
        }
        rows.push(vec![
            head.name().to_string(),
            "Weighted Avg".into(),
            f4(report.weighted_precision),
            f4(report.weighted_recall),
            f4(report.weighted_f1),
        ]);
    }
    print_rows(
        "Table III: per-class metrics per classification head",
        &["Model", "Type", "Precision", "Recall", "F1-score"],
        &rows,
    );
    println!("\npaper shape check: LSTM+MLP best weighted F1 (0.9497); Service hardest class for every head");
}
