//! Streaming ingestion benchmark, written to `results/stream_bench.json`.
//!
//! ```text
//! stream_bench [--seed 42] [--blocks 1000] [--users 40] [--capacity 16]
//!              [--reclass-every 5] [--min-txs 3] [--reclass-threads 0]
//!              [--reclass-batch 128] [--smoke]
//!              [--out results/stream_bench.json]
//! ```
//!
//! Three phases:
//!
//! 1. **Follow** — a `bstream` follower drains a live feed over the whole
//!    chain, reporting ingest throughput (blocks/s), per-address
//!    reclassification latency (p50/p99), and steady-state lag behind the
//!    producer (mean of the second half of the lag samples). The
//!    `follow_vs_ingest` ratio (pure ingest blocks/s over end-to-end
//!    follow blocks/s) is gated at ≤ 2.0x when at least two cores are
//!    available and `--smoke` is not set — batched reclassification must
//!    keep live labeling within 2x of ingest-only speed (mirroring the
//!    `kernel_bench` speedup gates: CI smoke runs check correctness, not
//!    speed).
//! 2. **Batched vs serial identity** — two followers replay the same
//!    sub-chain, one with `reclass_threads = 1` (the serial per-address
//!    path) and one with `reclass_threads = 4`; final labels and every
//!    cached embedding matrix are asserted byte-identical (always, even
//!    under `--smoke`).
//! 3. **Incremental vs reconstruction** — for the busiest address, the cost
//!    of extending graphs by one transaction (`apply_tx` + re-deriving the
//!    dirty slice) is compared against rebuilding every slice from scratch
//!    with `construct_address_graphs`, sampled along the history. The two
//!    paths are asserted byte-identical at the final state, and the bench
//!    fails if incremental maintenance is not strictly faster.
//!
//! Classification timing uses untrained weights of the `fast` preset —
//! label *values* are meaningless here, but every code path (embed, head,
//! cache maintenance) runs exactly as it would with a trained model.

use bac_bench::{flag_value, has_flag};
use baclassifier::construction::{construct_address_graphs, graphs_identical, IncrementalGraphs};
use baclassifier::{BaClassifier, BacConfig, ModelArtifact};
use bstream::{BlockFeed, Follower, FollowerConfig};
use btcsim::{AddressRecord, BlockCursor, Dataset, SimConfig, Simulator};
use std::time::{Duration, Instant};

/// Untrained weights of the `fast` preset (no fit: benchmark, not model).
fn untrained_artifact() -> ModelArtifact {
    let cfg = BacConfig::fast();
    let clf = BaClassifier::new(cfg.clone());
    let path = std::env::temp_dir().join(format!("stream_bench_artifact_{}", std::process::id()));
    clf.save_weights(&path).expect("write weights");
    let weights = numnet::read_matrices(&mut std::fs::File::open(&path).expect("reopen weights"))
        .expect("read weights");
    std::fs::remove_file(&path).ok();
    ModelArtifact {
        config: cfg,
        weights,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = flag_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let blocks: u64 = flag_value(&args, "--blocks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let users: usize = flag_value(&args, "--users")
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let capacity: usize = flag_value(&args, "--capacity")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let reclass_every: u64 = flag_value(&args, "--reclass-every")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let min_txs: usize = flag_value(&args, "--min-txs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let reclass_threads: usize = flag_value(&args, "--reclass-threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let reclass_batch: usize = flag_value(&args, "--reclass-batch")
        .and_then(|v| v.parse().ok())
        .unwrap_or(128);
    let smoke = has_flag("--smoke");
    let out = flag_value(&args, "--out").unwrap_or_else(|| "results/stream_bench.json".into());

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let gated = !smoke && cores >= 2;

    let mut sim_cfg = SimConfig {
        blocks,
        ..SimConfig::tiny(seed)
    };
    sim_cfg.retail.num_users = users;
    let artifact = untrained_artifact();

    // Phase 1: follow the live chain end to end.
    eprintln!(
        "[stream_bench] following {} blocks (seed {seed}, reclass_threads {reclass_threads}, batch {reclass_batch})…",
        blocks + 1
    );
    let mut follower = Follower::new(
        &artifact,
        FollowerConfig {
            min_txs,
            reclass_every,
            reclass_threads,
            reclass_batch,
            ..FollowerConfig::default()
        },
    )
    .expect("untrained artifact matches its own config");
    let feed = BlockFeed::follow_sim(sim_cfg.clone(), 0, capacity);
    let t = Instant::now();
    follower.run(&feed);
    let follow_elapsed = t.elapsed();
    let m = follower.metrics().clone();
    let blocks_per_sec = m.blocks_ingested as f64 / follow_elapsed.as_secs_f64();
    // Pure-ingest speed over end-to-end follow speed: 1.0 would mean
    // reclassification is free; the gate below requires ≤ 2.0.
    let ingest_bps = m.ingest_blocks_per_sec();
    let follow_vs_ingest = if blocks_per_sec > 0.0 {
        ingest_bps / blocks_per_sec
    } else {
        f64::INFINITY
    };
    eprintln!(
        "[stream_bench] {} blocks in {:.2}s = {:.1} blocks/s ({} tracked, p50 {}µs, p99 {}µs, steady lag {:.2})",
        m.blocks_ingested,
        follow_elapsed.as_secs_f64(),
        blocks_per_sec,
        follower.num_tracked(),
        m.reclass_percentile_us(0.50),
        m.reclass_percentile_us(0.99),
        m.steady_lag(),
    );
    eprintln!(
        "[stream_bench] ingest-only {ingest_bps:.1} blocks/s, follow_vs_ingest {follow_vs_ingest:.2}x \
         ({} batches, mean {:.1} addrs/batch, {} coalesced flips)",
        m.reclass_batches,
        m.mean_batch_addrs(),
        m.coalesced_flips,
    );
    if gated {
        assert!(
            follow_vs_ingest <= 2.0,
            "follow throughput must stay within 2x of pure ingest \
             (got {follow_vs_ingest:.2}x: ingest {ingest_bps:.1} vs follow {blocks_per_sec:.1} blocks/s)"
        );
    } else {
        eprintln!("[stream_bench] follow_vs_ingest gate skipped (smoke={smoke}, cores={cores})");
    }

    // Phase 2: batched reclassification must be byte-identical to the
    // serial per-address path. Always asserted, even under --smoke.
    let identity_blocks = blocks.min(200);
    let identity_cfg = SimConfig {
        blocks: identity_blocks,
        ..sim_cfg.clone()
    };
    eprintln!("[stream_bench] batched-vs-serial identity over {identity_blocks} blocks…");
    let mut serial = Follower::new(
        &artifact,
        FollowerConfig {
            min_txs,
            reclass_every,
            reclass_threads: 1,
            reclass_batch,
            ..FollowerConfig::default()
        },
    )
    .expect("serial follower");
    let mut batched = Follower::new(
        &artifact,
        FollowerConfig {
            min_txs,
            reclass_every,
            reclass_threads: 4,
            reclass_batch,
            ..FollowerConfig::default()
        },
    )
    .expect("batched follower");
    for block in BlockCursor::new(identity_cfg) {
        serial.step(&block);
        batched.step(&block);
    }
    serial.reclassify_dirty();
    batched.reclassify_dirty();
    assert_eq!(
        serial.labels(),
        batched.labels(),
        "labels must not depend on reclass_threads"
    );
    let serial_embeds = serial.export_embeddings();
    let batched_embeds = batched.export_embeddings();
    assert_eq!(serial_embeds.len(), batched_embeds.len());
    for (addr, embeds) in &serial_embeds {
        let other = &batched_embeds[addr];
        assert_eq!(embeds.len(), other.len(), "embedding count for {addr:?}");
        for (x, y) in embeds.iter().zip(other) {
            assert_eq!(
                x.as_slice(),
                y.as_slice(),
                "embeddings for {addr:?} must be byte-identical"
            );
        }
    }
    eprintln!(
        "[stream_bench] identity OK: {} labels, {} embedded addresses bit-equal at threads 1 vs 4",
        serial.labels().len(),
        serial_embeds.len()
    );

    // Phase 3: incremental update vs full reconstruction, busiest address.
    let sim = Simulator::run_to_completion(sim_cfg);
    let ds = Dataset::from_simulator(&sim, 1);
    let record = ds
        .records
        .iter()
        .max_by_key(|r| r.txs.len())
        .expect("non-empty dataset");
    let construction = artifact.config.construction.clone();
    let stride = (record.txs.len() / 200).max(1);
    eprintln!(
        "[stream_bench] incremental vs reconstruction on {:?} ({} txs, sampling every {stride})…",
        record.address,
        record.txs.len()
    );

    let mut inc = IncrementalGraphs::new(record.address, construction.clone());
    let mut inc_time = Duration::ZERO;
    let mut batch_time = Duration::ZERO;
    let mut samples = 0usize;
    for (i, tx) in record.txs.iter().enumerate() {
        let sampled = i % stride == 0 || i + 1 == record.txs.len();
        if sampled {
            // Incremental path: extend by one tx, re-derive the dirty slice.
            let t = Instant::now();
            inc.apply_tx(tx);
            let _ = inc.graphs();
            inc_time += t.elapsed();

            // Batch path: rebuild every slice from the same prefix.
            let prefix = AddressRecord {
                address: record.address,
                label: record.label,
                txs: record.txs[..=i].to_vec(),
            };
            let t = Instant::now();
            let (batch_graphs, _) = construct_address_graphs(&prefix, &construction);
            batch_time += t.elapsed();
            samples += 1;

            if i + 1 == record.txs.len() {
                graphs_identical(inc.graphs(), &batch_graphs)
                    .expect("incremental and batch graphs must be byte-identical");
            }
        } else {
            inc.apply_tx(tx);
        }
    }
    let speedup = batch_time.as_secs_f64() / inc_time.as_secs_f64();
    eprintln!(
        "[stream_bench] {} samples: incremental {:.1}ms, reconstruction {:.1}ms, speedup {:.1}x",
        samples,
        inc_time.as_secs_f64() * 1e3,
        batch_time.as_secs_f64() * 1e3,
        speedup
    );
    assert!(
        speedup > 1.0,
        "incremental update must beat full reconstruction (got {speedup:.2}x)"
    );

    let json = format!(
        "{{\"seed\":{seed},\"blocks\":{},\"tracked\":{},\"labeled\":{},\
         \"smoke\":{smoke},\"cores\":{cores},\"follow_vs_ingest_gated\":{gated},\
         \"reclass_threads\":{reclass_threads},\"reclass_batch\":{reclass_batch},\
         \"follow\":{{\"elapsed_s\":{:.3},\"blocks_per_sec\":{blocks_per_sec:.1},\
         \"follow_vs_ingest\":{follow_vs_ingest:.3},\
         \"reclass_p50_us\":{},\"reclass_p99_us\":{},\"mean_lag\":{:.3},\
         \"steady_lag\":{:.3},\"metrics\":{}}},\
         \"identity\":{{\"blocks\":{identity_blocks},\"labels\":{},\"addresses\":{}}},\
         \"incremental_vs_batch\":{{\"address\":{},\"num_txs\":{},\"samples\":{samples},\
         \"incremental_ms\":{:.3},\"batch_ms\":{:.3},\"speedup\":{speedup:.2}}}}}",
        m.blocks_ingested,
        follower.num_tracked(),
        follower.labels().len(),
        follow_elapsed.as_secs_f64(),
        m.reclass_percentile_us(0.50),
        m.reclass_percentile_us(0.99),
        m.mean_lag(),
        m.steady_lag(),
        m.to_json(),
        serial.labels().len(),
        serial_embeds.len(),
        record.address.0,
        record.txs.len(),
        inc_time.as_secs_f64() * 1e3,
        batch_time.as_secs_f64() * 1e3,
    );
    bac_bench::write_results_atomic(&out, &json);
    println!("wrote {out}");
}
