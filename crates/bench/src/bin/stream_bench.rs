//! Streaming ingestion benchmark, written to `results/stream_bench.json`.
//!
//! ```text
//! stream_bench [--seed 42] [--blocks 1000] [--users 40] [--capacity 16]
//!              [--reclass-every 5] [--min-txs 3] [--out results/stream_bench.json]
//! ```
//!
//! Two phases:
//!
//! 1. **Follow** — a `bstream` follower drains a live feed over the whole
//!    chain, reporting ingest throughput (blocks/s), per-address
//!    reclassification latency (p50/p99), and steady-state lag behind the
//!    producer (mean of the second half of the lag samples).
//! 2. **Incremental vs reconstruction** — for the busiest address, the cost
//!    of extending graphs by one transaction (`apply_tx` + re-deriving the
//!    dirty slice) is compared against rebuilding every slice from scratch
//!    with `construct_address_graphs`, sampled along the history. The two
//!    paths are asserted byte-identical at the final state, and the bench
//!    fails if incremental maintenance is not strictly faster.
//!
//! Classification timing uses untrained weights of the `fast` preset —
//! label *values* are meaningless here, but every code path (embed, head,
//! cache maintenance) runs exactly as it would with a trained model.

use bac_bench::flag_value;
use baclassifier::construction::{construct_address_graphs, graphs_identical, IncrementalGraphs};
use baclassifier::{BaClassifier, BacConfig, ModelArtifact};
use bstream::{BlockFeed, Follower, FollowerConfig};
use btcsim::{AddressRecord, Dataset, SimConfig, Simulator};
use std::time::{Duration, Instant};

/// Untrained weights of the `fast` preset (no fit: benchmark, not model).
fn untrained_artifact() -> ModelArtifact {
    let cfg = BacConfig::fast();
    let clf = BaClassifier::new(cfg.clone());
    let path = std::env::temp_dir().join(format!("stream_bench_artifact_{}", std::process::id()));
    clf.save_weights(&path).expect("write weights");
    let weights = numnet::read_matrices(&mut std::fs::File::open(&path).expect("reopen weights"))
        .expect("read weights");
    std::fs::remove_file(&path).ok();
    ModelArtifact {
        config: cfg,
        weights,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = flag_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let blocks: u64 = flag_value(&args, "--blocks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let users: usize = flag_value(&args, "--users")
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let capacity: usize = flag_value(&args, "--capacity")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let reclass_every: u64 = flag_value(&args, "--reclass-every")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let min_txs: usize = flag_value(&args, "--min-txs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let out = flag_value(&args, "--out").unwrap_or_else(|| "results/stream_bench.json".into());

    let mut sim_cfg = SimConfig {
        blocks,
        ..SimConfig::tiny(seed)
    };
    sim_cfg.retail.num_users = users;
    let artifact = untrained_artifact();

    // Phase 1: follow the live chain end to end.
    eprintln!(
        "[stream_bench] following {} blocks (seed {seed})…",
        blocks + 1
    );
    let mut follower = Follower::new(
        &artifact,
        FollowerConfig {
            min_txs,
            reclass_every,
            ..FollowerConfig::default()
        },
    )
    .expect("untrained artifact matches its own config");
    let feed = BlockFeed::follow_sim(sim_cfg.clone(), 0, capacity);
    let t = Instant::now();
    follower.run(&feed);
    let follow_elapsed = t.elapsed();
    let m = follower.metrics().clone();
    let blocks_per_sec = m.blocks_ingested as f64 / follow_elapsed.as_secs_f64();
    eprintln!(
        "[stream_bench] {} blocks in {:.2}s = {:.1} blocks/s ({} tracked, p50 {}µs, p99 {}µs, steady lag {:.2})",
        m.blocks_ingested,
        follow_elapsed.as_secs_f64(),
        blocks_per_sec,
        follower.num_tracked(),
        m.reclass_percentile_us(0.50),
        m.reclass_percentile_us(0.99),
        m.steady_lag(),
    );

    // Phase 2: incremental update vs full reconstruction, busiest address.
    let sim = Simulator::run_to_completion(sim_cfg);
    let ds = Dataset::from_simulator(&sim, 1);
    let record = ds
        .records
        .iter()
        .max_by_key(|r| r.txs.len())
        .expect("non-empty dataset");
    let construction = artifact.config.construction.clone();
    let stride = (record.txs.len() / 200).max(1);
    eprintln!(
        "[stream_bench] incremental vs reconstruction on {:?} ({} txs, sampling every {stride})…",
        record.address,
        record.txs.len()
    );

    let mut inc = IncrementalGraphs::new(record.address, construction.clone());
    let mut inc_time = Duration::ZERO;
    let mut batch_time = Duration::ZERO;
    let mut samples = 0usize;
    for (i, tx) in record.txs.iter().enumerate() {
        let sampled = i % stride == 0 || i + 1 == record.txs.len();
        if sampled {
            // Incremental path: extend by one tx, re-derive the dirty slice.
            let t = Instant::now();
            inc.apply_tx(tx);
            let _ = inc.graphs();
            inc_time += t.elapsed();

            // Batch path: rebuild every slice from the same prefix.
            let prefix = AddressRecord {
                address: record.address,
                label: record.label,
                txs: record.txs[..=i].to_vec(),
            };
            let t = Instant::now();
            let (batch_graphs, _) = construct_address_graphs(&prefix, &construction);
            batch_time += t.elapsed();
            samples += 1;

            if i + 1 == record.txs.len() {
                graphs_identical(inc.graphs(), &batch_graphs)
                    .expect("incremental and batch graphs must be byte-identical");
            }
        } else {
            inc.apply_tx(tx);
        }
    }
    let speedup = batch_time.as_secs_f64() / inc_time.as_secs_f64();
    eprintln!(
        "[stream_bench] {} samples: incremental {:.1}ms, reconstruction {:.1}ms, speedup {:.1}x",
        samples,
        inc_time.as_secs_f64() * 1e3,
        batch_time.as_secs_f64() * 1e3,
        speedup
    );
    assert!(
        speedup > 1.0,
        "incremental update must beat full reconstruction (got {speedup:.2}x)"
    );

    let json = format!(
        "{{\"seed\":{seed},\"blocks\":{},\"tracked\":{},\"labeled\":{},\
         \"follow\":{{\"elapsed_s\":{:.3},\"blocks_per_sec\":{blocks_per_sec:.1},\
         \"reclass_p50_us\":{},\"reclass_p99_us\":{},\"mean_lag\":{:.3},\
         \"steady_lag\":{:.3},\"metrics\":{}}},\
         \"incremental_vs_batch\":{{\"address\":{},\"num_txs\":{},\"samples\":{samples},\
         \"incremental_ms\":{:.3},\"batch_ms\":{:.3},\"speedup\":{speedup:.2}}}}}",
        m.blocks_ingested,
        follower.num_tracked(),
        follower.labels().len(),
        follow_elapsed.as_secs_f64(),
        m.reclass_percentile_us(0.50),
        m.reclass_percentile_us(0.99),
        m.mean_lag(),
        m.steady_lag(),
        m.to_json(),
        record.address.0,
        record.txs.len(),
        inc_time.as_secs_f64() * 1e3,
        batch_time.as_secs_f64() * 1e3,
    );
    bac_bench::write_results_atomic(&out, &json);
    println!("wrote {out}");
}
