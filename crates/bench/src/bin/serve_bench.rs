//! Serving benchmark: cold vs cache-warm single-query latency and batched
//! throughput for the `baserve` engine, written to `results/serve_bench.json`.
//!
//! ```text
//! serve_bench [--seed 42] [--min-txs 3] [--requests 2000] [--zipf 1.1]
//!             [--workers N] [--out results/serve_bench.json]
//! ```
//!
//! The cold phase queries every address once through an empty cache (each
//! query pays graph construction + GFN embedding); the warm phase repeats
//! the same queries against the now-populated cache (only the LSTM head
//! runs). The throughput phase pushes a zipf-distributed burst through the
//! batching window.

use bac_bench::flag_value;
use baclassifier::{BaClassifier, BacConfig};
use baserve::{Engine, EngineConfig, Ticket};
use btcsim::dist::ZipfSampler;
use btcsim::{Dataset, SimConfig, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

struct LatencyStats {
    mean_us: f64,
    p50_us: u64,
    p95_us: u64,
}

fn latency_stats(mut samples_us: Vec<u64>) -> LatencyStats {
    assert!(!samples_us.is_empty());
    samples_us.sort_unstable();
    let pct = |q: f64| samples_us[((samples_us.len() - 1) as f64 * q).round() as usize];
    LatencyStats {
        mean_us: samples_us.iter().sum::<u64>() as f64 / samples_us.len() as f64,
        p50_us: pct(0.50),
        p95_us: pct(0.95),
    }
}

fn json_phase(name: &str, queries: usize, s: &LatencyStats) -> String {
    format!(
        "\"{name}\":{{\"queries\":{queries},\"mean_us\":{:.1},\"p50_us\":{},\"p95_us\":{}}}",
        s.mean_us, s.p50_us, s.p95_us
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = flag_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let min_txs: usize = flag_value(&args, "--min-txs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let requests: usize = flag_value(&args, "--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);
    let zipf_s: f64 = flag_value(&args, "--zipf")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.1);
    let out = flag_value(&args, "--out").unwrap_or_else(|| "results/serve_bench.json".into());

    eprintln!("[serve_bench] fitting a fast model (seed {seed})…");
    let sim = Simulator::run_to_completion(SimConfig::tiny(seed));
    let dataset = Dataset::from_simulator(&sim, min_txs);
    let mut clf = BaClassifier::new(BacConfig::fast());
    clf.fit(&dataset);
    let artifact = Arc::new(clf.to_artifact().expect("fitted classifier exports"));

    let mut config = EngineConfig::default();
    if let Some(w) = flag_value(&args, "--workers").and_then(|v| v.parse().ok()) {
        config.workers = w;
    }

    // Phase 1+2: cold then warm single-query latency, same engine, so the
    // warm pass replays the identical key set against a populated cache.
    let engine =
        Engine::new(Arc::clone(&artifact), config.clone()).expect("artifact matches its own model");
    let mut cold_us = Vec::with_capacity(dataset.len());
    for record in &dataset.records {
        let t = Instant::now();
        let r = engine.classify(record.clone()).expect("classify succeeds");
        cold_us.push(t.elapsed().as_micros() as u64);
        assert!(!r.cache_hit, "first touch of an address must miss");
    }
    let mut warm_us = Vec::with_capacity(dataset.len());
    for record in &dataset.records {
        let t = Instant::now();
        let r = engine.classify(record.clone()).expect("classify succeeds");
        warm_us.push(t.elapsed().as_micros() as u64);
        assert!(r.cache_hit, "second touch of an address must hit");
    }
    let cold = latency_stats(cold_us);
    let warm = latency_stats(warm_us);
    engine.shutdown();
    eprintln!(
        "[serve_bench] cold p50 {}µs vs warm p50 {}µs ({:.1}x)",
        cold.p50_us,
        warm.p50_us,
        cold.p50_us as f64 / warm.p50_us.max(1) as f64
    );

    // Phase 3: batched zipf burst through a fresh engine.
    let engine = Engine::new(artifact, config.clone()).expect("artifact matches its own model");
    let sampler = ZipfSampler::new(dataset.len(), zipf_s);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x10ad);
    let window = config.queue_depth.min(64);
    let mut in_flight: Vec<Ticket> = Vec::with_capacity(window);
    let t = Instant::now();
    for _ in 0..requests {
        let idx = sampler.sample(&mut rng);
        match engine.submit(dataset.records[idx].clone()) {
            Ok(ticket) => in_flight.push(ticket),
            Err(e) => panic!("burst submission failed: {e}"),
        }
        if in_flight.len() >= window {
            for ticket in in_flight.drain(..) {
                ticket.wait().expect("burst request succeeds");
            }
        }
    }
    for ticket in in_flight.drain(..) {
        ticket.wait().expect("burst request succeeds");
    }
    let elapsed = t.elapsed();
    let snapshot = engine.metrics();
    engine.shutdown();
    let qps = requests as f64 / elapsed.as_secs_f64();
    eprintln!(
        "[serve_bench] burst: {requests} requests in {:.2}s = {:.0} req/s, \
         hit rate {:.1}%, mean batch {:.1}",
        elapsed.as_secs_f64(),
        qps,
        snapshot.cache_hit_rate * 100.0,
        snapshot.mean_batch_size
    );

    let json = format!(
        "{{\"seed\":{seed},\"addresses\":{},\"workers\":{},{},{},\
         \"throughput\":{{\"requests\":{requests},\"zipf_s\":{zipf_s},\
         \"elapsed_s\":{:.3},\"qps\":{:.1},\"metrics\":{}}}}}",
        dataset.len(),
        config.workers,
        json_phase("cold", dataset.len(), &cold),
        json_phase("warm", dataset.len(), &warm),
        elapsed.as_secs_f64(),
        qps,
        snapshot.to_json()
    );
    bac_bench::write_results_atomic(&out, &json);
    println!("wrote {out}");
}
