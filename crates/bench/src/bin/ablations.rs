//! Ablations of the design choices DESIGN.md §4 calls out: slice size,
//! multi-compression thresholds Ψ/σ, GFN propagation depth k, and the
//! compression/augmentation stages themselves. Each configuration reports
//! held-out weighted F1, construction cost, and graph size.

use bac_bench::{build_split, f4, flag_value, prepared_graph_set, print_rows, ExpScale};
use baclassifier::config::ConstructionConfig;
use baclassifier::construction::construct_dataset_graphs;
use baclassifier::features::NODE_FEAT_DIM;
use baclassifier::models::Gfn;
use baclassifier::train::{evaluate_graph_model, train_graph_model, TrainParams};
use btcsim::Dataset;

struct Outcome {
    f1: f64,
    construct_secs: f64,
    mean_nodes: f64,
}

fn run_config(
    scale: &ExpScale,
    train: &Dataset,
    test: &Dataset,
    cfg: &ConstructionConfig,
    gfn_k: usize,
    epochs: usize,
) -> Outcome {
    // Construction cost + graph size, single core for comparability.
    let (graphs, timings) = construct_dataset_graphs(&train.records, cfg, 1);
    let n_graphs: usize = graphs.iter().map(Vec::len).sum();
    let total_nodes: usize = graphs.iter().flatten().map(|g| g.num_nodes()).sum();

    let gfn = Gfn::new(NODE_FEAT_DIM, gfn_k, 64, 32, scale.seed);
    let train_set = prepared_graph_set(&gfn, &train.records, cfg, scale.max_slices_per_address);
    let test_set = prepared_graph_set(&gfn, &test.records, cfg, scale.max_slices_per_address);
    train_graph_model(
        &gfn,
        &train_set,
        &[],
        TrainParams {
            epochs,
            learning_rate: 0.01,
            batch_size: 8,
            seed: scale.seed,
        },
    );
    let report = evaluate_graph_model(&gfn, &test_set);
    Outcome {
        f1: report.weighted_f1,
        construct_secs: timings.total().as_secs_f64(),
        mean_nodes: total_nodes as f64 / n_graphs.max(1) as f64,
    }
}

fn main() {
    let scale = ExpScale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let epochs: usize = flag_value(&args, "--epochs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    println!("# Ablations (GFN, {epochs} epochs per configuration)");
    let (train, test) = build_split(&scale);
    println!("train {} / test {}", train.len(), test.len());

    let base = ConstructionConfig::default();
    let row = |name: &str, o: &Outcome| -> Vec<String> {
        vec![
            name.to_string(),
            f4(o.f1),
            format!("{:.2}s", o.construct_secs),
            format!("{:.1}", o.mean_nodes),
        ]
    };
    let header = ["Configuration", "F1", "Construct", "Nodes/graph"];

    // 1) Slice size.
    let mut rows = Vec::new();
    for slice in [25usize, 50, 100, 200] {
        let cfg = ConstructionConfig {
            slice_size: slice,
            ..base.clone()
        };
        eprintln!("[ablations] slice_size={slice}…");
        let o = run_config(&scale, &train, &test, &cfg, 2, epochs);
        rows.push(row(&format!("slice_size={slice}"), &o));
    }
    print_rows("Ablation: slice size (paper fixes 100)", &header, &rows);

    // 2) Compression thresholds Ψ / σ.
    let mut rows = Vec::new();
    for (psi, sigma) in [(0.3, 0), (0.5, 1), (0.8, 2), (0.95, 5)] {
        let cfg = ConstructionConfig {
            psi,
            sigma,
            ..base.clone()
        };
        eprintln!("[ablations] psi={psi} sigma={sigma}…");
        let o = run_config(&scale, &train, &test, &cfg, 2, epochs);
        rows.push(row(&format!("psi={psi} sigma={sigma}"), &o));
    }
    print_rows(
        "Ablation: multi-compression thresholds (Eq. 5–6)",
        &header,
        &rows,
    );

    // 3) Stages on/off.
    let mut rows = Vec::new();
    for (name, compress, augment) in [
        ("full pipeline", true, true),
        ("no augmentation", true, false),
        ("no compression", false, true),
        ("neither", false, false),
    ] {
        let cfg = ConstructionConfig {
            compress,
            augment,
            ..base.clone()
        };
        eprintln!("[ablations] {name}…");
        let o = run_config(&scale, &train, &test, &cfg, 2, epochs);
        rows.push(row(name, &o));
    }
    print_rows("Ablation: pipeline stages", &header, &rows);

    // 4) GFN propagation depth k (Eq. 13).
    let mut rows = Vec::new();
    for k in [0usize, 1, 2, 4] {
        eprintln!("[ablations] gfn_k={k}…");
        let o = run_config(&scale, &train, &test, &base, k, epochs);
        rows.push(row(&format!("gfn_k={k}"), &o));
    }
    print_rows("Ablation: GFN propagation depth k", &header, &rows);
}
