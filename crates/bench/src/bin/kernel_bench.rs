//! Kernel-layer benchmark: blocked matmul, sparse adjacency spmm, fused
//! LSTM gates, and backward-pass allocation behavior. Written to
//! `results/kernel_bench.json`.
//!
//! ```text
//! kernel_bench [--min-speedup 2.0] [--out results/kernel_bench.json] [--smoke]
//! ```
//!
//! Four sections:
//!
//! 1. **Blocked matmul** — GFLOP/s of the production kernel vs the
//!    pre-blocking naive i-k-j kernel (with its historical zero-skip),
//!    at representative GNN shapes. Identity is asserted bitwise; the
//!    `--min-speedup` gate applies in full mode on multi-core hosts only
//!    (mirroring train_bench: CI smoke runs check correctness, not speed).
//! 2. **Sparse adjacency** — per-epoch forward+backward time of the GCN
//!    computation through the CSR spmm tape op vs the dense-adjacency
//!    formulation it replaced, on a synthetic slice-graph-shaped workload.
//!    Embeddings and parameter gradients must match bitwise.
//! 3. **Fused LSTM gates** — per-sequence forward+backward time of the
//!    fused `[W | b]` cell vs the four-matmul reference; final hidden
//!    state asserted bitwise.
//! 4. **Batched-sequence LSTM** — forward-only inference time of one
//!    ragged-batch `forward_last_batch` pass vs `B` serial single-sequence
//!    unrolls, at serving batch sizes. Every output row is asserted
//!    bitwise identical to its serial counterpart; the ≥2x gate applies at
//!    `B ≥ 8` in full mode on multi-core hosts.
//! 5. **Backward allocations** — gradient-buffer allocations per tape node
//!    for the GCN workload; the zero-clone backward must stay below one
//!    allocation per node (always asserted, even under `--smoke`).

use bac_bench::{flag_value, has_flag};
use graphalgo::{normalized_adjacency, Graph};
use numnet::layers::lstm::LstmCell;
use numnet::{backward_alloc_count, reset_backward_alloc_count, Matrix, Param, SparseAdj, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// The pre-blocking production matmul: row-major i-k-j with the historical
/// `a == 0.0` skip, operating on slices exactly as the old kernel did.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, kk) = a.shape();
    let n = b.cols();
    assert_eq!(kk, b.rows());
    let mut out = Matrix::zeros(m, n);
    let (a_s, b_s) = (a.as_slice(), b.as_slice());
    for i in 0..m {
        let out_row = out.row_mut(i);
        for k in 0..kk {
            let av = a_s[i * kk + k];
            if av == 0.0 {
                continue;
            }
            let b_row = &b_s[k * n..(k + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    out
}

fn bits_eq(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Median wall-clock seconds of `reps` runs of `f`.
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn test_matrix(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        ((r * cols + c + salt * 7919) as f32 * 0.137).sin()
    })
}

/// A synthetic slice-graph topology: an n-node ring with chords, degree ~4.
fn synthetic_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_edge(i, (i + 1) % n, 1.0);
        g.add_edge(i, (i + 7) % n, 1.0);
    }
    g
}

struct MatmulResult {
    shape: (usize, usize, usize),
    naive_gflops: f64,
    blocked_gflops: f64,
    speedup: f64,
}

fn bench_matmul(m: usize, k: usize, n: usize, reps: usize) -> MatmulResult {
    let a = test_matrix(m, k, 1);
    let b = test_matrix(k, n, 2);
    let blocked = a.matmul(&b);
    let naive = naive_matmul(&a, &b);
    assert!(
        bits_eq(&blocked, &naive),
        "blocked matmul diverged from naive at {m}x{k}x{n}"
    );
    let naive_s = time_median(reps, || {
        std::hint::black_box(naive_matmul(
            std::hint::black_box(&a),
            std::hint::black_box(&b),
        ));
    });
    let blocked_s = time_median(reps, || {
        std::hint::black_box(std::hint::black_box(&a).matmul(std::hint::black_box(&b)));
    });
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    let r = MatmulResult {
        shape: (m, k, n),
        naive_gflops: flops / naive_s / 1e9,
        blocked_gflops: flops / blocked_s / 1e9,
        speedup: naive_s / blocked_s,
    };
    eprintln!(
        "[kernel_bench] matmul {m}x{k}x{n}: naive {:.2} GFLOP/s, blocked {:.2} GFLOP/s ({:.2}x)",
        r.naive_gflops, r.blocked_gflops, r.speedup
    );
    r
}

/// One GCN epoch (forward + backward + grad reset) through the sparse path.
///
/// Both epoch formulations pool with `mean_rows` rather than the model's
/// `sum_rows`: summing over a large synthetic graph saturates the softmax,
/// and the backward pass then measures denormal-multiplication stalls
/// instead of kernel throughput.
fn gcn_sparse_epoch(ax: &Matrix, adj: &SparseAdj, params: &[Param]) -> Matrix {
    let tape = Tape::new();
    let h1 = tape
        .constant(ax.clone())
        .matmul(tape.param(&params[0]))
        .add_row(tape.param(&params[1]))
        .relu();
    let h2 = h1
        .spmm(adj)
        .matmul(tape.param(&params[2]))
        .add_row(tape.param(&params[3]))
        .relu();
    let e = h2.mean_rows();
    let out = e.value();
    e.softmax_cross_entropy(&[1]).backward();
    for p in params {
        p.zero_grad();
    }
    out
}

/// The same epoch through the dense-adjacency formulation it replaced.
fn gcn_dense_epoch(x: &Matrix, adj_dense: &Matrix, params: &[Param]) -> Matrix {
    let tape = Tape::new();
    let av = tape.constant(adj_dense.clone());
    let h1 = av
        .matmul(tape.constant(x.clone()))
        .matmul(tape.param(&params[0]))
        .add_row(tape.param(&params[1]))
        .relu();
    let h2 = av
        .matmul(h1)
        .matmul(tape.param(&params[2]))
        .add_row(tape.param(&params[3]))
        .relu();
    let e = h2.mean_rows();
    let out = e.value();
    e.softmax_cross_entropy(&[1]).backward();
    for p in params {
        p.zero_grad();
    }
    out
}

/// One sequence pass (forward + backward + grad reset) of the fused cell.
fn lstm_fused_pass(cell: &LstmCell, seq: &[Matrix]) -> Matrix {
    let tape = Tape::new();
    let mut st = cell.zero_state(&tape, seq[0].rows());
    for m in seq {
        st = cell.step(&tape, tape.constant(m.clone()), &st);
    }
    let h = st.h.value();
    st.h.sum_rows()
        .matmul(tape.constant(Matrix::col_vec(vec![1.0; h.cols()])))
        .slice_rows(0, 1)
        .backward();
    for p in cell.params() {
        p.zero_grad();
    }
    h
}

/// The same pass through the pre-fusion four-matmul formulation, driven by
/// per-gate parameter slices of the fused `[W | b]`.
fn lstm_reference_pass(w: &[Param], b: &[Param], hidden: usize, seq: &[Matrix]) -> Matrix {
    let tape = Tape::new();
    let batch = seq[0].rows();
    let mut h = tape.constant(Matrix::zeros(batch, hidden));
    let mut c = tape.constant(Matrix::zeros(batch, hidden));
    for m in seq {
        let hx = numnet::Var::concat_cols(&[h, tape.constant(m.clone())]);
        let f = hx
            .matmul(tape.param(&w[0]))
            .add_row(tape.param(&b[0]))
            .sigmoid();
        let i = hx
            .matmul(tape.param(&w[1]))
            .add_row(tape.param(&b[1]))
            .sigmoid();
        let c_tilde = hx
            .matmul(tape.param(&w[2]))
            .add_row(tape.param(&b[2]))
            .tanh();
        let o = hx
            .matmul(tape.param(&w[3]))
            .add_row(tape.param(&b[3]))
            .sigmoid();
        c = f.mul_elem(c).add(i.mul_elem(c_tilde));
        h = o.mul_elem(c.tanh());
    }
    let out = h.value();
    h.sum_rows()
        .matmul(tape.constant(Matrix::col_vec(vec![1.0; hidden])))
        .slice_rows(0, 1)
        .backward();
    for p in w.iter().chain(b) {
        p.zero_grad();
    }
    out
}

/// Forward-only serial serving path: one tape and one unrolled pass per
/// sequence — exactly what per-request classification did before batching.
fn lstm_serial_last(cell: &LstmCell, seqs: &[Vec<Matrix>]) -> Vec<Matrix> {
    seqs.iter()
        .map(|seq| {
            let tape = Tape::new();
            let mut st = cell.zero_state(&tape, 1);
            for m in seq {
                st = cell.step(&tape, tape.constant(m.clone()), &st);
            }
            st.h.value()
        })
        .collect()
}

/// Ragged batch of `b` sequences with deterministic mixed lengths.
fn ragged_seqs(b: usize, d: usize, max_len: usize) -> Vec<Vec<Matrix>> {
    (0..b)
        .map(|i| {
            let len = 1 + (i * 17 + 3) % max_len;
            (0..len).map(|t| test_matrix(1, d, i * 131 + t)).collect()
        })
        .collect()
}

struct LstmBatchedResult {
    b: usize,
    serial_ms: f64,
    batched_ms: f64,
    speedup: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = has_flag("--smoke");
    let min_speedup: f64 = flag_value(&args, "--min-speedup")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let out = flag_value(&args, "--out").unwrap_or_else(|| "results/kernel_bench.json".into());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let gated = !smoke && cores >= 2;
    let reps = if smoke { 3 } else { 9 };

    // 1. Blocked matmul at representative GNN shapes: node-feature × weight
    // products (tall-skinny), hidden-layer products, and a square panel.
    let shapes: &[(usize, usize, usize)] = if smoke {
        &[(128, 85, 64), (96, 96, 96)]
    } else {
        &[(512, 85, 64), (256, 256, 256), (1024, 128, 128)]
    };
    let matmuls: Vec<MatmulResult> = shapes
        .iter()
        .map(|&(m, k, n)| bench_matmul(m, k, n, reps))
        .collect();
    if gated {
        for r in &matmuls {
            assert!(
                r.speedup >= min_speedup,
                "blocked matmul must be >= {min_speedup:.1}x naive at {:?} (got {:.2}x)",
                r.shape,
                r.speedup
            );
        }
    } else {
        eprintln!("[kernel_bench] matmul speedup gate skipped (smoke={smoke}, cores={cores})");
    }

    // 2. Sparse adjacency spmm vs dense-adjacency tape epochs.
    let n_nodes = if smoke { 200 } else { 1500 };
    let (feat, hidden, embed) = (24, 64, 32);
    let csr = normalized_adjacency(&synthetic_graph(n_nodes));
    let adj = SparseAdj::new(csr);
    let x = test_matrix(n_nodes, feat, 3);
    let ax = Matrix::from_vec(n_nodes, feat, adj.matrix().matmul_dense(x.as_slice(), feat));
    let adj_dense = adj.to_dense();
    let mut rng = StdRng::seed_from_u64(7);
    let params = vec![
        Param::new(numnet::init::xavier_uniform(feat, hidden, &mut rng)),
        Param::new(Matrix::zeros(1, hidden)),
        Param::new(numnet::init::xavier_uniform(hidden, embed, &mut rng)),
        Param::new(Matrix::zeros(1, embed)),
    ];
    let e_sparse = gcn_sparse_epoch(&ax, &adj, &params);
    let e_dense = gcn_dense_epoch(&x, &adj_dense, &params);
    assert!(
        bits_eq(&e_sparse, &e_dense),
        "sparse GCN epoch diverged from the dense formulation"
    );
    let sparse_s = time_median(reps, || {
        std::hint::black_box(gcn_sparse_epoch(&ax, &adj, &params));
    });
    let dense_s = time_median(reps, || {
        std::hint::black_box(gcn_dense_epoch(&x, &adj_dense, &params));
    });
    let spmm_speedup = dense_s / sparse_s;
    eprintln!(
        "[kernel_bench] gcn epoch n={n_nodes}: dense {:.2}ms, sparse {:.2}ms ({spmm_speedup:.2}x)",
        dense_s * 1e3,
        sparse_s * 1e3
    );
    if gated {
        assert!(
            spmm_speedup >= min_speedup,
            "sparse epoch must be >= {min_speedup:.1}x faster than dense (got {spmm_speedup:.2}x)"
        );
    }

    // 3. Fused LSTM gates vs the four-matmul reference.
    let (batch, d, h, steps) = if smoke {
        (4, 32, 32, 8)
    } else {
        (8, 64, 64, 20)
    };
    let mut rng = StdRng::seed_from_u64(11);
    let cell = LstmCell::new(d, h, &mut rng);
    let fused = cell.params();
    let (wf, bf) = (fused[0].value().clone(), fused[1].value().clone());
    let w_ref: Vec<Param> = (0..4)
        .map(|g| Param::new(wf.slice_cols(g * h, (g + 1) * h)))
        .collect();
    let b_ref: Vec<Param> = (0..4)
        .map(|g| Param::new(bf.slice_cols(g * h, (g + 1) * h)))
        .collect();
    let seq: Vec<Matrix> = (0..steps).map(|t| test_matrix(batch, d, t + 5)).collect();
    let h_fused = lstm_fused_pass(&cell, &seq);
    let h_ref = lstm_reference_pass(&w_ref, &b_ref, h, &seq);
    assert!(
        bits_eq(&h_fused, &h_ref),
        "fused LSTM diverged from the four-matmul reference"
    );
    let fused_s = time_median(reps, || {
        std::hint::black_box(lstm_fused_pass(&cell, &seq));
    });
    let ref_s = time_median(reps, || {
        std::hint::black_box(lstm_reference_pass(&w_ref, &b_ref, h, &seq));
    });
    let lstm_speedup = ref_s / fused_s;
    let lstm_step_us = fused_s / steps as f64 * 1e6;
    eprintln!(
        "[kernel_bench] lstm {steps}-step pass: four-matmul {:.2}ms, fused {:.2}ms ({lstm_speedup:.2}x, {lstm_step_us:.1}us/step)",
        ref_s * 1e3,
        fused_s * 1e3
    );

    // 4. Batched ragged-sequence LSTM inference vs B serial unrolls.
    let max_len = if smoke { 12 } else { 40 };
    let lstm_batched: Vec<LstmBatchedResult> = [1usize, 8, 32]
        .iter()
        .map(|&b| {
            let seqs = ragged_seqs(b, d, max_len);
            let serial = lstm_serial_last(&cell, &seqs);
            let batched = {
                let tape = Tape::new();
                cell.forward_last_batch(&tape, &seqs).value()
            };
            for (i, s) in serial.iter().enumerate() {
                assert!(
                    s.as_slice()
                        .iter()
                        .zip(batched.row(i))
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "batched LSTM row {i} diverged from the serial pass at B={b}"
                );
            }
            let serial_s = time_median(reps, || {
                std::hint::black_box(lstm_serial_last(&cell, std::hint::black_box(&seqs)));
            });
            let batched_s = time_median(reps, || {
                let tape = Tape::new();
                std::hint::black_box(
                    cell.forward_last_batch(&tape, std::hint::black_box(&seqs))
                        .value(),
                );
            });
            let r = LstmBatchedResult {
                b,
                serial_ms: serial_s * 1e3,
                batched_ms: batched_s * 1e3,
                speedup: serial_s / batched_s,
            };
            eprintln!(
                "[kernel_bench] lstm_batched B={b}: serial {:.3}ms, batched {:.3}ms ({:.2}x)",
                r.serial_ms, r.batched_ms, r.speedup
            );
            r
        })
        .collect();
    if gated {
        for r in lstm_batched.iter().filter(|r| r.b >= 8) {
            assert!(
                r.speedup >= min_speedup,
                "batched LSTM must be >= {min_speedup:.1}x serial at B={} (got {:.2}x)",
                r.b,
                r.speedup
            );
        }
    } else {
        eprintln!(
            "[kernel_bench] lstm_batched speedup gate skipped (smoke={smoke}, cores={cores})"
        );
    }

    // 5. Backward allocation count on the GCN workload.
    let allocs;
    let nodes;
    {
        let tape = Tape::new();
        let h1 = tape
            .constant(ax.clone())
            .matmul(tape.param(&params[0]))
            .add_row(tape.param(&params[1]))
            .relu();
        let h2 = h1
            .spmm(&adj)
            .matmul(tape.param(&params[2]))
            .add_row(tape.param(&params[3]))
            .relu();
        let loss = h2.sum_rows().softmax_cross_entropy(&[1]);
        nodes = tape.len();
        reset_backward_alloc_count();
        loss.backward();
        allocs = backward_alloc_count();
        for p in &params {
            p.zero_grad();
        }
    }
    let allocs_per_node = allocs as f64 / nodes as f64;
    eprintln!(
        "[kernel_bench] backward: {allocs} gradient allocations over {nodes} tape nodes \
         ({allocs_per_node:.2}/node)"
    );
    assert!(
        allocs < nodes,
        "zero-clone backward must allocate less than one buffer per node \
         ({allocs} allocs, {nodes} nodes)"
    );

    let matmul_json: Vec<String> = matmuls
        .iter()
        .map(|r| {
            format!(
                "{{\"m\":{},\"k\":{},\"n\":{},\"naive_gflops\":{:.3},\
                 \"blocked_gflops\":{:.3},\"speedup\":{:.3}}}",
                r.shape.0, r.shape.1, r.shape.2, r.naive_gflops, r.blocked_gflops, r.speedup
            )
        })
        .collect();
    let lstm_batched_json: Vec<String> = lstm_batched
        .iter()
        .map(|r| {
            format!(
                "{{\"b\":{},\"serial_ms\":{:.3},\"batched_ms\":{:.3},\"speedup\":{:.3}}}",
                r.b, r.serial_ms, r.batched_ms, r.speedup
            )
        })
        .collect();
    let json = format!(
        "{{\"smoke\":{smoke},\"cores\":{cores},\"speedup_gated\":{gated},\
         \"min_speedup\":{min_speedup},\"matmul\":[{}],\
         \"gcn_epoch\":{{\"nodes\":{n_nodes},\"dense_ms\":{:.3},\"sparse_ms\":{:.3},\
         \"speedup\":{:.3}}},\
         \"lstm\":{{\"steps\":{steps},\"four_matmul_ms\":{:.3},\"fused_ms\":{:.3},\
         \"speedup\":{:.3},\"fused_step_us\":{:.2}}},\
         \"lstm_batched\":[{}],\
         \"backward\":{{\"tape_nodes\":{nodes},\"grad_allocs\":{allocs},\
         \"allocs_per_node\":{allocs_per_node:.3}}},\"identity\":true}}",
        matmul_json.join(","),
        dense_s * 1e3,
        sparse_s * 1e3,
        spmm_speedup,
        ref_s * 1e3,
        fused_s * 1e3,
        lstm_speedup,
        lstm_step_us,
        lstm_batched_json.join(","),
    );
    bac_bench::write_results_atomic(&out, &json);
    println!("wrote {out}");
}
