//! Sharding benchmark: proves the shared-nothing partition is *free* —
//! N shards produce byte-identical output to 1 shard — and records the
//! per-shard scaling curves, written to `results/shard_bench.json`.
//!
//! ```text
//! shard_bench [--smoke] [--seed 42] [--blocks N] [--users N] [--p2p F]
//!             [--growth F] [--shards 1,2,4] [--min-txs 3]
//!             [--requests N] [--zipf 1.1] [--out results/shard_bench.json]
//! ```
//!
//! Two phases over one simulated chain:
//!
//! * **Stream** — an unsharded [`Follower`] drains the chain as the
//!   reference; then a [`ShardedFollower`] at each shard count drains the
//!   same blocks and the disjoint union of its shards' label tables,
//!   histories, and embedding bytes is asserted equal to the reference,
//!   byte for byte, while wall time per shard count gives the scaling
//!   curve.
//! * **Serve** — a single [`Engine`] labels a record sample as the
//!   reference; a [`ShardRouter`] at each shard count must return the
//!   same labels in request order, then a zipf burst measures fleet
//!   throughput per shard count.
//!
//! The default (non-`--smoke`) configuration sizes the simulation past
//! 100k distinct addresses so the identity claim is exercised at serving
//! scale, not toy scale. `--smoke` shrinks everything for CI.

use bac_bench::flag_value;
use baclassifier::{BaClassifier, BacConfig, ModelArtifact};
use baserve::{Engine, EngineConfig, Ticket};
use bashard::{MergedReport, ShardReport, ShardRouter, ShardedFollower};
use bstream::{BlockFeed, Follower, FollowerConfig};
use btcsim::dist::ZipfSampler;
use btcsim::{Block, Dataset, SimConfig, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Freshly initialized weights exported through the NNIO stream — a valid
/// fitted-state artifact without paying for `fit()` on a 100k-address
/// dataset. Identity only needs determinism, not accuracy.
fn untrained_artifact() -> Arc<ModelArtifact> {
    let cfg = BacConfig::fast();
    let clf = BaClassifier::new(cfg.clone());
    let path = std::env::temp_dir().join(format!("shard_bench_artifact_{}", std::process::id()));
    clf.save_weights(&path).expect("write weights");
    let weights = numnet::read_matrices(&mut std::fs::File::open(&path).expect("reopen weights"))
        .expect("read weights");
    std::fs::remove_file(&path).ok();
    Arc::new(ModelArtifact {
        config: cfg,
        weights,
    })
}

/// Assert the merged shard state equals the unsharded reference, byte for
/// byte: labels, history lengths, tracked count, and every embedding
/// matrix. Panics (failing the bench) on any divergence.
fn assert_identical(merged: &MergedReport, reference: &Follower, shards: u32) {
    assert_eq!(
        merged.num_tracked,
        reference.num_tracked(),
        "{shards}-shard union tracks a different address set"
    );
    assert_eq!(merged.next_height, reference.next_height());
    assert_eq!(
        &merged.labels,
        reference.labels(),
        "{shards}-shard label table diverged"
    );
    assert_eq!(merged.history_lens, reference.history_lens());
    assert_eq!(merged.embeddings.len(), reference.export_embeddings().len());
    for (addr, embeds) in &merged.embeddings {
        let want = reference
            .embeddings(*addr)
            .unwrap_or_else(|| panic!("{addr:?} embedded by shards but not the reference"));
        assert_eq!(embeds.len(), want.len(), "slice count for {addr:?}");
        for (got, want) in embeds.iter().zip(want) {
            assert_eq!(
                got.as_slice(),
                want.as_slice(),
                "{shards}-shard embedding bytes diverged for {addr:?}"
            );
        }
    }
}

fn per_shard_json(reports: &[ShardReport]) -> String {
    let entries: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                "{{\"shard\":{},\"tracked\":{},\"ingest_s\":{:.3},\"reclass_s\":{:.3},\
                 \"reclassifications\":{},\"tx_applications\":{}}}",
                r.shard.index,
                r.num_tracked,
                r.metrics.ingest_time.as_secs_f64(),
                r.metrics.reclass_time.as_secs_f64(),
                r.metrics.reclassifications,
                r.metrics.tx_applications
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed: u64 = flag_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let blocks: u64 = flag_value(&args, "--blocks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 60 } else { 2200 });
    let users: usize = flag_value(&args, "--users")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 40 } else { 400 });
    let p2p: f64 = flag_value(&args, "--p2p")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 8.0 } else { 30.0 });
    let growth: f64 = flag_value(&args, "--growth")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 0.0 } else { 2.0 });
    let min_txs: usize = flag_value(&args, "--min-txs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let requests: usize = flag_value(&args, "--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 300 } else { 2000 });
    let zipf_s: f64 = flag_value(&args, "--zipf")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.1);
    let shard_counts: Vec<u32> = flag_value(&args, "--shards")
        .unwrap_or_else(|| "1,2,4".into())
        .split(',')
        .map(|s| s.trim().parse().expect("--shards takes e.g. 1,2,4"))
        .filter(|&n| n > 0)
        .collect();
    let out = flag_value(&args, "--out").unwrap_or_else(|| "results/shard_bench.json".into());
    // The identity floor: a full run must exercise the partition at
    // serving scale (ISSUE 6 acceptance: 100k+ distinct addresses).
    let address_floor: usize = if smoke { 0 } else { 100_000 };

    let mut sim_cfg = SimConfig {
        blocks,
        ..SimConfig::tiny(seed)
    };
    sim_cfg.retail.num_users = users;
    sim_cfg.retail.p2p_per_block = p2p;
    sim_cfg.retail.growth_per_block = growth;

    eprintln!("[shard_bench] mining {blocks} blocks (seed {seed}, {users} users)…");
    let t = Instant::now();
    let sim = Simulator::run_to_completion(sim_cfg);
    let chain_blocks: Vec<Block> = sim.chain().blocks().to_vec();
    let num_addresses = sim.chain().num_addresses();
    let num_txs = sim.chain().num_transactions();
    eprintln!(
        "[shard_bench] chain ready in {:.1}s: {} blocks, {} txs, {} addresses",
        t.elapsed().as_secs_f64(),
        chain_blocks.len(),
        num_txs,
        num_addresses
    );
    assert!(
        num_addresses >= address_floor,
        "chain has only {num_addresses} addresses (< {address_floor}); raise --blocks/--users/--p2p"
    );

    let artifact = untrained_artifact();
    let follower_cfg = FollowerConfig {
        min_txs,
        reclass_every: 0, // one classification pass at the tip, like finish()
        ..FollowerConfig::default()
    };

    // ── Stream phase: reference, then each shard count against it. ──────
    eprintln!("[shard_bench] stream reference: unsharded follower…");
    let t = Instant::now();
    let mut reference = Follower::new(&artifact, follower_cfg.clone()).expect("config matches");
    for b in &chain_blocks {
        reference.step(b);
    }
    let reclassified = reference.reclassify_dirty();
    let ref_elapsed = t.elapsed().as_secs_f64();
    eprintln!(
        "[shard_bench] reference: {} tracked, {reclassified} classified in {ref_elapsed:.1}s",
        reference.num_tracked()
    );
    assert!(
        reference.num_tracked() >= address_floor,
        "follower tracks only {} addresses (< {address_floor})",
        reference.num_tracked()
    );

    let mut stream_curves = Vec::new();
    for &shards in &shard_counts {
        eprintln!("[shard_bench] stream {shards}-shard run…");
        let mut sharded = ShardedFollower::new(Arc::clone(&artifact), follower_cfg.clone(), shards)
            .expect("shard fleet starts");
        let feed = BlockFeed::from_blocks(chain_blocks.clone());
        let t = Instant::now();
        sharded.run(&feed).expect("fleet drains the feed");
        let reports = sharded.finish().expect("fleet finishes");
        let elapsed = t.elapsed().as_secs_f64();
        let per_shard = per_shard_json(&reports);
        let merged = ShardReport::merge(reports);
        assert_identical(&merged, &reference, shards);
        let bps = chain_blocks.len() as f64 / elapsed;
        eprintln!(
            "[shard_bench]   {shards}-shard: {elapsed:.1}s = {bps:.1} blocks/s \
             (x{:.2} vs reference), identity OK",
            ref_elapsed / elapsed
        );
        stream_curves.push(format!(
            "{{\"shards\":{shards},\"elapsed_s\":{elapsed:.3},\"blocks_per_sec\":{bps:.2},\
             \"speedup_vs_reference\":{:.3},\"per_shard\":{per_shard}}}",
            ref_elapsed / elapsed
        ));
    }
    let tracked = reference.num_tracked();
    drop(reference);

    // ── Serve phase: router identity + zipf throughput per shard count. ─
    eprintln!("[shard_bench] building dataset for the serve phase…");
    let dataset = Dataset::from_simulator(&sim, min_txs);
    drop(sim);
    assert!(dataset.len() >= 10, "dataset too small: {}", dataset.len());
    // Identity over a bounded sample keeps the full run's serve phase
    // proportionate; the burst then exercises the whole record set.
    let identity_sample = dataset.len().min(2000);
    eprintln!(
        "[shard_bench] serve reference: single engine over {identity_sample} of {} records…",
        dataset.len()
    );
    let engine_cfg = EngineConfig::default();
    let single = Engine::new(Arc::clone(&artifact), engine_cfg.clone()).expect("engine starts");
    let want: Vec<_> = dataset.records[..identity_sample]
        .iter()
        .map(|r| single.classify(r.clone()).expect("classify succeeds").label)
        .collect();
    single.shutdown();

    let mut serve_curves = Vec::new();
    for &shards in &shard_counts {
        eprintln!("[shard_bench] serve {shards}-shard run…");
        let router = ShardRouter::new(Arc::clone(&artifact), engine_cfg.clone(), shards)
            .expect("router starts");
        let responses = router.classify_batch(&dataset.records[..identity_sample]);
        for (i, response) in responses.into_iter().enumerate() {
            let response = response.expect("batch submission within queue budget");
            assert_eq!(
                response.label, want[i],
                "{shards}-shard router diverged from the single engine at index {i}"
            );
        }

        let sampler = ZipfSampler::new(dataset.len(), zipf_s);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5a4d);
        let window = engine_cfg.queue_depth.clamp(1, 64);
        let mut in_flight: Vec<Ticket> = Vec::with_capacity(window);
        let t = Instant::now();
        for _ in 0..requests {
            let idx = sampler.sample(&mut rng);
            match router.submit(dataset.records[idx].clone()) {
                Ok(ticket) => in_flight.push(ticket),
                Err(e) => panic!("burst submission failed: {e}"),
            }
            if in_flight.len() >= window {
                for ticket in in_flight.drain(..) {
                    ticket.wait().expect("burst request succeeds");
                }
            }
        }
        for ticket in in_flight.drain(..) {
            ticket.wait().expect("burst request succeeds");
        }
        let elapsed = t.elapsed().as_secs_f64();
        let merged = router.metrics();
        router.shutdown();
        let qps = requests as f64 / elapsed;
        eprintln!(
            "[shard_bench]   {shards}-shard: {requests} requests in {elapsed:.2}s \
             = {qps:.0} req/s, hit rate {:.1}%, identity OK",
            merged.cache_hit_rate * 100.0
        );
        serve_curves.push(format!(
            "{{\"shards\":{shards},\"identity_checked\":{identity_sample},\
             \"requests\":{requests},\"elapsed_s\":{elapsed:.3},\"qps\":{qps:.1},\
             \"metrics\":{}}}",
            merged.to_json()
        ));
    }

    // Shards are real threads, so the scaling a curve can show is bounded
    // by the host's cores — record them so a flat curve on a 1-core box
    // reads as "no parallel hardware", not "sharding doesn't scale".
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\"seed\":{seed},\"smoke\":{smoke},\"cores\":{cores},\"blocks\":{},\
         \"txs\":{num_txs},\
         \"addresses\":{num_addresses},\"tracked\":{tracked},\"min_txs\":{min_txs},\
         \"identity\":\"byte-identical labels, histories, and embeddings at every \
         shard count\",\"stream\":{{\"reference_elapsed_s\":{ref_elapsed:.3},\
         \"reclassified\":{reclassified},\"curves\":[{}]}},\
         \"serve\":{{\"dataset\":{},\"zipf_s\":{zipf_s},\"curves\":[{}]}}}}",
        chain_blocks.len(),
        stream_curves.join(","),
        dataset.len(),
        serve_curves.join(",")
    );
    bac_bench::write_results_atomic(&out, &json);
    println!("wrote {out}");
}
