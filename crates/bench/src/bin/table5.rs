//! Table V — runtime overhead of the four address-graph construction
//! stages: single-core per-address CPU time and the per-stage share.
//!
//! Ablation flags: `--psi F`, `--sigma N`, `--slice-size N`.

use bac_bench::{build_split, f4, flag_value, print_rows, ExpScale};
use baclassifier::config::ConstructionConfig;
use baclassifier::construction::construct_dataset_graphs;

fn main() {
    let scale = ExpScale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = ConstructionConfig::default();
    if let Some(psi) = flag_value(&args, "--psi").and_then(|v| v.parse().ok()) {
        cfg.psi = psi;
    }
    if let Some(sigma) = flag_value(&args, "--sigma").and_then(|v| v.parse().ok()) {
        cfg.sigma = sigma;
    }
    if let Some(s) = flag_value(&args, "--slice-size").and_then(|v| v.parse().ok()) {
        cfg.slice_size = s;
    }
    println!(
        "# Table V — construction stage runtime (slice={}, psi={}, sigma={})",
        cfg.slice_size, cfg.psi, cfg.sigma
    );

    let (train, test) = build_split(&scale);
    let mut records = train.records;
    records.extend(test.records);
    println!(
        "constructing graphs for {} addresses on a single core…",
        records.len()
    );

    // Single-threaded, as the paper reports single-core CPU time.
    let (graphs, timings) = construct_dataset_graphs(&records, &cfg, 1);
    let n = records.len().max(1) as f64;
    let per_addr = |d: std::time::Duration| d.as_secs_f64() / n;
    let ratios = timings.ratios();

    let stages = [
        ("Stage 1 (extract)", per_addr(timings.extract), ratios[0]),
        (
            "Stage 2 (single-compress)",
            per_addr(timings.single_compress),
            ratios[1],
        ),
        (
            "Stage 3 (multi-compress)",
            per_addr(timings.multi_compress),
            ratios[2],
        ),
        ("Stage 4 (augment)", per_addr(timings.augment), ratios[3]),
    ];
    let mut rows: Vec<Vec<String>> = stages
        .iter()
        .map(|(name, secs, ratio)| {
            vec![
                name.to_string(),
                format!("{:.6}s", secs),
                format!("{:.2}%", ratio * 100.0),
            ]
        })
        .collect();
    rows.push(vec![
        "Total".into(),
        format!("{:.6}s", per_addr(timings.total())),
        "100.00%".into(),
    ]);
    print_rows(
        "Table V: per-address single-core CPU time per stage",
        &["Stage", "CPU time/addr", "Share"],
        &rows,
    );

    let total_graphs: usize = graphs.iter().map(Vec::len).sum();
    println!("\n{total_graphs} slice graphs; paper shape check: Stage 3 dominates (paper: 62.44%) — ours: {}", f4(ratios[2]));
}
