//! Fig. 5 — graph-representation-learning overhead: held-out weighted F1 of
//! GFN / DiffPool / GCN per training epoch (left panel) and per unit of
//! training wall-clock (right panel).

use bac_bench::{build_split, f4, flag_value, prepared_graph_set, print_rows, ExpScale};
use baclassifier::config::ConstructionConfig;
use baclassifier::features::NODE_FEAT_DIM;
use baclassifier::models::{DiffPool, Gcn, Gfn, GraphModel};
use baclassifier::train::{train_graph_model, TrainLog, TrainParams};

fn main() {
    let scale = ExpScale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let epochs: usize = flag_value(&args, "--epochs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    println!("# Fig. 5 — GNN training curves over {epochs} epochs");

    let cfg = ConstructionConfig::default();
    let (train, test) = build_split(&scale);
    let gnns: Vec<Box<dyn GraphModel>> = vec![
        Box::new(Gfn::new(NODE_FEAT_DIM, 2, 64, 32, scale.seed)),
        Box::new(DiffPool::new(NODE_FEAT_DIM, 64, 8, 32, scale.seed)),
        Box::new(Gcn::new(NODE_FEAT_DIM, 64, 32, scale.seed)),
    ];
    let mut logs: Vec<TrainLog> = Vec::new();
    for model in &gnns {
        eprintln!("[fig5] training {}…", model.name());
        let train_set = prepared_graph_set(
            model.as_ref(),
            &train.records,
            &cfg,
            scale.max_slices_per_address,
        );
        let test_set = prepared_graph_set(
            model.as_ref(),
            &test.records,
            &cfg,
            scale.max_slices_per_address,
        );
        logs.push(train_graph_model(
            model.as_ref(),
            &train_set,
            &test_set,
            TrainParams {
                epochs,
                learning_rate: 0.01,
                batch_size: 8,
                seed: scale.seed,
            },
        ));
    }

    // Left panel: F1 per epoch.
    let mut rows = Vec::new();
    for e in 0..epochs {
        let mut row = vec![e.to_string()];
        for log in &logs {
            row.push(f4(log.points[e].test_f1));
        }
        rows.push(row);
    }
    print_rows(
        "Fig. 5 (left): test weighted F1 vs epoch",
        &["Epoch", "GFN", "DiffPool", "GCN"],
        &rows,
    );

    // Right panel: F1 vs wall-clock.
    let mut rows = Vec::new();
    for log in &logs {
        for p in &log.points {
            rows.push(vec![
                log.model.clone(),
                format!("{:.2}", p.elapsed.as_secs_f64()),
                f4(p.test_f1),
            ]);
        }
    }
    print_rows(
        "Fig. 5 (right): test weighted F1 vs training seconds",
        &["Model", "Seconds", "F1"],
        &rows,
    );

    for log in &logs {
        println!(
            "{:>9}: final F1 {} in {:.2}s ({} epochs)",
            log.model,
            f4(log.final_f1()),
            log.total_time().as_secs_f64(),
            log.points.len()
        );
    }
    println!("\npaper shape check: GFN reaches the highest F1 and needs less wall-clock per epoch than GCN/DiffPool");
}
