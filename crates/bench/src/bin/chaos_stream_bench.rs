//! Streaming chaos benchmark: measure what crash recovery costs and prove
//! it loses nothing. Written to `results/chaos_stream_bench.json`.
//!
//! ```text
//! chaos_stream_bench [--seed 42] [--blocks 240] [--smoke]
//!                    [--out results/chaos_stream_bench.json]
//! ```
//!
//! Three phases, all against an uninterrupted reference follower over the
//! same chain:
//!
//! 1. **Kill mid-ingest** — a journaling follower is dropped cold at 60%
//!    of the chain; `Follower::recover` restores the newest snapshot and
//!    replays the journal tail. Reported: recovery wall time, journal
//!    replay throughput (blocks/s), and `blocks_lost` — the gap between
//!    the crash height and the recovered height, which must be **zero**.
//! 2. **Corrupt snapshot fallback** — same crash, but the newest snapshot
//!    generation is bit-flipped first. Recovery must quarantine it, fall
//!    back a generation, replay a longer tail, and still lose zero
//!    blocks.
//! 3. **Sharded respawn** — a 4-shard `ShardedFollower` takes a scripted
//!    worker panic mid-stream; the supervisor respawns the shard from
//!    snapshot + journal. Reported: end-to-end wall time, respawn count,
//!    and the merged fleet's `blocks_lost` (zero) with the label table
//!    asserted identical to the unsharded reference.
//!
//! The bench *fails* (non-zero exit) if any phase loses a block or
//! diverges from the reference — it is an acceptance gate first and a
//! stopwatch second. `--smoke` shrinks the chain for CI.

use bac_bench::{flag_value, write_results_atomic};
use baclassifier::{BaClassifier, BacConfig, ModelArtifact};
use baserve::{FaultPlan, ScriptedFaultPlan};
use bashard::{
    shard_snapshot_path, ShardReport, ShardedFollower, SpawnMode, StreamHooks, SupervisionConfig,
};
use bstream::{quarantine_path, Follower, FollowerConfig};
use btcsim::{Block, BlockCursor, SimConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Untrained weights of the `fast` preset (no fit: benchmark, not model).
fn untrained_artifact() -> ModelArtifact {
    let cfg = BacConfig::fast();
    let clf = BaClassifier::new(cfg.clone());
    let path = std::env::temp_dir().join(format!("chaos_stream_artifact_{}", std::process::id()));
    clf.save_weights(&path).expect("write weights");
    let weights = numnet::read_matrices(&mut std::fs::File::open(&path).expect("reopen weights"))
        .expect("read weights");
    std::fs::remove_file(&path).ok();
    ModelArtifact {
        config: cfg,
        weights,
    }
}

struct Paths {
    base: PathBuf,
    journal: PathBuf,
}

fn paths(tag: &str) -> Paths {
    let dir = std::env::temp_dir();
    Paths {
        base: dir.join(format!("chaos_stream_{tag}_{}.bsnap", std::process::id())),
        journal: dir.join(format!("chaos_stream_{tag}_{}.bjrnl", std::process::id())),
    }
}

impl Paths {
    fn cfg(&self, snapshot_every: u64) -> FollowerConfig {
        FollowerConfig {
            snapshot_every,
            snapshot_path: Some(self.base.clone()),
            journal_path: Some(self.journal.clone()),
            ..FollowerConfig::default()
        }
    }

    fn cleanup(&self, shards: u32) {
        std::fs::remove_file(&self.journal).ok();
        let bases: Vec<PathBuf> = if shards <= 1 {
            vec![self.base.clone()]
        } else {
            (0..shards)
                .map(|i| shard_snapshot_path(&self.base, i, shards))
                .collect()
        };
        for base in bases {
            for k in 0..4 {
                let p = bstream::generation_path(&base, k);
                std::fs::remove_file(quarantine_path(&p)).ok();
                std::fs::remove_file(p).ok();
            }
        }
    }
}

/// Identity gate: recovered labels, histories, and height must equal the
/// reference's at the same point of the chain.
fn assert_identical(recovered: &Follower, reference: &Follower, phase: &str) {
    assert_eq!(
        recovered.next_height(),
        reference.next_height(),
        "{phase}: height diverged"
    );
    assert_eq!(
        recovered.num_tracked(),
        reference.num_tracked(),
        "{phase}: tracked set diverged"
    );
    assert_eq!(
        recovered.labels(),
        reference.labels(),
        "{phase}: label table diverged"
    );
    assert_eq!(
        recovered.history_lens(),
        reference.history_lens(),
        "{phase}: histories diverged"
    );
}

/// Phase 1 + 2 share this harness; `corrupt_newest` is the only
/// difference. Returns the phase's JSON object.
fn crashed_follower_phase(
    artifact: &ModelArtifact,
    blocks: &[Block],
    tag: &str,
    corrupt_newest: bool,
) -> String {
    let p = paths(tag);
    p.cleanup(1);
    let split = blocks.len() * 3 / 5;
    let crash_height = blocks[split - 1].height + 1;

    // Ingest 60% of the chain, snapshotting periodically, then "crash":
    // drop everything without a final snapshot or journal sync beyond the
    // per-append cadence.
    let mut live = Follower::recover(artifact, p.cfg(10))
        .expect("fresh recover")
        .follower;
    for b in &blocks[..split] {
        live.step(b);
    }
    drop(live);

    if corrupt_newest {
        let mut bytes = std::fs::read(&p.base).expect("newest snapshot exists");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&p.base, bytes).expect("corrupt snapshot");
    }

    let t = Instant::now();
    let recovery = Follower::recover(artifact, p.cfg(10)).expect("recovery succeeds");
    let recovery_ms = t.elapsed().as_secs_f64() * 1e3;
    let replayed = recovery.replayed_blocks;
    let replay_bps = if recovery_ms > 0.0 {
        replayed as f64 / (recovery_ms / 1e3)
    } else {
        0.0
    };
    let mut recovered = recovery.follower;
    let blocks_lost = crash_height - recovered.next_height();
    assert_eq!(
        blocks_lost, 0,
        "{tag}: journal replay must reach the crash height"
    );
    if corrupt_newest {
        assert!(
            !recovery.quarantined.is_empty(),
            "{tag}: the corrupted generation must be quarantined"
        );
        assert!(
            quarantine_path(&p.base).exists(),
            "{tag}: quarantine file must exist"
        );
    }

    // Reference at the crash height: byte-equal state, no interruption.
    let mut reference = Follower::new(artifact, FollowerConfig::default()).expect("reference");
    for b in &blocks[..split] {
        reference.step(b);
    }
    reference.reclassify_dirty();
    recovered.mark_all_dirty();
    recovered.reclassify_dirty();
    assert_identical(&recovered, &reference, tag);

    eprintln!(
        "[chaos_stream_bench] {tag}: recovered in {recovery_ms:.1}ms, {replayed} blocks \
         replayed ({replay_bps:.0}/s), {} quarantined, 0 lost",
        recovery.quarantined.len()
    );
    let result = format!(
        "{{\"recovery_ms\":{recovery_ms:.3},\"replayed_blocks\":{replayed},\
         \"replay_blocks_per_sec\":{replay_bps:.1},\"blocks_lost\":{blocks_lost},\
         \"quarantined\":{},\"restored_generation\":{},\"crash_height\":{crash_height}}}",
        recovery.quarantined.len(),
        recovery
            .restored_generation
            .map_or("null".to_string(), |g| g.to_string()),
    );
    p.cleanup(1);
    result
}

fn sharded_respawn_phase(artifact: &Arc<ModelArtifact>, blocks: &[Block]) -> String {
    let shards = 4u32;
    let p = paths("sharded");
    p.cleanup(shards);

    // Reference: the unsharded tip.
    let mut reference = Follower::new(artifact, FollowerConfig::default()).expect("reference");
    for b in blocks {
        reference.step(b);
    }
    reference.reclassify_dirty();

    let victim = 2usize;
    let fault_height = (blocks.len() as u64) / 2;
    let plan = Arc::new(ScriptedFaultPlan::panics(victim, &[fault_height + 1]));
    let hooks = StreamHooks {
        fault_plan: Arc::clone(&plan) as Arc<dyn FaultPlan>,
    };
    let t = Instant::now();
    let mut fleet = ShardedFollower::with_hooks(
        Arc::clone(artifact),
        p.cfg(20),
        shards,
        hooks,
        SupervisionConfig {
            restart_backoff: Duration::from_millis(1),
            ..SupervisionConfig::default()
        },
        SpawnMode::Fresh,
    )
    .expect("fleet starts");
    let health = fleet.health();
    for b in blocks {
        fleet.step(b.clone()).expect("fleet ingests");
    }
    let reports = fleet.finish().expect("fleet finishes");
    let elapsed = t.elapsed().as_secs_f64();

    assert_eq!(plan.injected(), 1, "the scripted panic must fire");
    let respawns = health.total_respawns();
    assert!(respawns >= 1, "the killed shard must be respawned");
    let merged = ShardReport::merge(reports);
    let blocks_lost = reference.next_height() - merged.next_height;
    assert_eq!(blocks_lost, 0, "sharded respawn must lose nothing");
    assert_eq!(
        &merged.labels,
        reference.labels(),
        "sharded: label table diverged from the unsharded reference"
    );
    assert_eq!(merged.history_lens, reference.history_lens());

    let bps = blocks.len() as f64 / elapsed;
    eprintln!(
        "[chaos_stream_bench] sharded: {} blocks through a worker kill in {elapsed:.2}s \
         ({bps:.0}/s), {respawns} respawn(s), 0 lost",
        blocks.len()
    );
    let result = format!(
        "{{\"shards\":{shards},\"elapsed_s\":{elapsed:.3},\"blocks_per_sec\":{bps:.1},\
         \"respawns\":{respawns},\"faults_injected\":{},\"blocks_lost\":{blocks_lost}}}",
        plan.injected(),
    );
    p.cleanup(shards);
    result
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed: u64 = flag_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let blocks: u64 = flag_value(&args, "--blocks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 60 } else { 240 });
    let out =
        flag_value(&args, "--out").unwrap_or_else(|| "results/chaos_stream_bench.json".into());

    let chain: Vec<Block> = BlockCursor::new(SimConfig {
        blocks,
        ..SimConfig::tiny(seed)
    })
    .collect();
    let artifact = Arc::new(untrained_artifact());
    eprintln!(
        "[chaos_stream_bench] {} blocks (seed {seed}{})",
        chain.len(),
        if smoke { ", smoke" } else { "" }
    );

    let kill = crashed_follower_phase(&artifact, &chain, "kill_mid_ingest", false);
    let fallback = crashed_follower_phase(&artifact, &chain, "snapshot_fallback", true);
    let sharded = sharded_respawn_phase(&artifact, &chain);

    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"blocks\": {},\n  \"smoke\": {smoke},\n  \
         \"kill_mid_ingest\": {kill},\n  \"snapshot_fallback\": {fallback},\n  \
         \"sharded_respawn\": {sharded},\n  \"blocks_lost_total\": 0\n}}\n",
        chain.len(),
    );
    write_results_atomic(&out, &json);
    eprintln!("[chaos_stream_bench] wrote {out}");
}
