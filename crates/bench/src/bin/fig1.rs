//! Fig. 1 — active bitcoin addresses over time (the paper's motivation
//! chart). Prints the per-window active-address series of the simulated
//! chain plus cumulative distinct addresses, as an ASCII sparkline table.

use bac_bench::{build_full_dataset, flag_value, print_rows, ExpScale};

fn main() {
    let scale = ExpScale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let window: usize = flag_value(&args, "--window")
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    println!("# Fig. 1 — active addresses over time (window = {window} blocks)");
    let (sim, _) = build_full_dataset(&scale);

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for chunk in sim.activity().chunks(window).filter(|c| c.len() == window) {
        let active: usize = chunk.iter().map(|p| p.active_addresses).sum();
        let txs: usize = chunk.iter().map(|p| p.transactions).sum();
        let height = chunk.last().expect("non-empty chunk").height;
        let cumulative = chunk.last().expect("non-empty chunk").cumulative_addresses;
        series.push(active);
        rows.push(vec![
            height.to_string(),
            active.to_string(),
            txs.to_string(),
            cumulative.to_string(),
        ]);
    }
    print_rows(
        "Fig. 1 series: activity per window",
        &["Height", "Active addrs", "Txs", "Cumulative addrs"],
        &rows,
    );

    // Sparkline of the active-address series.
    let max = series.iter().copied().max().unwrap_or(1).max(1);
    let glyphs = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    let line: String = series
        .iter()
        .map(|&v| glyphs[(v * (glyphs.len() - 1)) / max])
        .collect();
    println!("\nactive addresses: {line}");
    println!(
        "shape check (paper: sustained growth in active addresses): first window {} -> last window {}",
        series.first().unwrap_or(&0),
        series.last().unwrap_or(&0)
    );
}
