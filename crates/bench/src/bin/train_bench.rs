//! Single- vs multi-thread training benchmark, written to
//! `results/train_bench.json`.
//!
//! ```text
//! train_bench [--seed 42] [--threads 4] [--min-speedup 2.0]
//!             [--out results/train_bench.json] [--smoke]
//! ```
//!
//! Runs the same `fit()` twice — `threads = 1` and `threads = N` — on one
//! workload and reports both wall-clocks. Two assertions:
//!
//! 1. **Byte-identity** (always): the two fits must produce byte-identical
//!    saved weights and identical held-out predictions. This is the
//!    deterministic-reduction guarantee of `baclassifier::parallel`.
//! 2. **Speedup** (full mode on multi-core hosts only): the parallel fit
//!    must be at least `--min-speedup` times faster. Skipped under
//!    `--smoke` and on single-core machines, where no parallel speedup is
//!    physically possible; the JSON records the core count so readers can
//!    tell a skipped gate from a passed one.
//!
//! `--smoke` shrinks the workload to CI scale (a few seconds) and checks
//! only byte-identity.

use bac_bench::{flag_value, has_flag, ExpScale};
use baclassifier::{BaClassifier, BacConfig};
use btcsim::{Dataset, SimConfig, Simulator};
use std::time::Instant;

fn fit_once(cfg: BacConfig, train: &Dataset) -> (BaClassifier, f64) {
    let threads = cfg.effective_threads();
    let mut clf = BaClassifier::new(cfg);
    let t = Instant::now();
    clf.fit(train);
    let secs = t.elapsed().as_secs_f64();
    eprintln!("[train_bench] fit with {threads} thread(s): {secs:.2}s");
    (clf, secs)
}

fn weight_bytes(clf: &BaClassifier, tag: &str) -> Vec<u8> {
    let path = std::env::temp_dir().join(format!("train_bench_{tag}_{}", std::process::id()));
    clf.save_weights(&path).expect("save weights");
    let bytes = std::fs::read(&path).expect("read weights back");
    std::fs::remove_file(&path).ok();
    bytes
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = has_flag("--smoke");
    let seed: u64 = flag_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let threads: usize = flag_value(&args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let min_speedup: f64 = flag_value(&args, "--min-speedup")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let out = flag_value(&args, "--out").unwrap_or_else(|| "results/train_bench.json".into());
    assert!(threads >= 2, "--threads must be >= 2 to compare against 1");

    // The bench pins thread counts explicitly; a stray BAC_THREADS override
    // would silently make both runs identical.
    std::env::remove_var("BAC_THREADS");

    let (train, test) = if smoke {
        let sim = Simulator::run_to_completion(SimConfig::tiny(seed));
        Dataset::from_simulator(&sim, 3).stratified_split(0.25, seed ^ 0x7e57)
    } else {
        let mut scale = ExpScale::small();
        scale.seed = seed;
        bac_bench::build_split(&scale)
    };
    eprintln!(
        "[train_bench] workload: {} train / {} test addresses ({})",
        train.len(),
        test.len(),
        if smoke { "smoke" } else { "full" }
    );

    let mut cfg = BacConfig::fast();
    if smoke {
        cfg.model.gnn_epochs = 2;
        cfg.model.head_epochs = 3;
    }
    cfg.threads = 1;
    let (serial, serial_s) = fit_once(cfg.clone(), &train);
    cfg.threads = threads;
    let (pooled, parallel_s) = fit_once(cfg, &train);

    let identical = weight_bytes(&serial, "serial") == weight_bytes(&pooled, "pooled");
    assert!(
        identical,
        "threads={threads} fit must be byte-identical to threads=1"
    );
    let mut compared = 0usize;
    for r in &test.records {
        let a = serial.predict(r);
        let b = pooled.predict(r);
        assert_eq!(a, b, "prediction diverged for address {}", r.address.0);
        compared += 1;
    }
    eprintln!("[train_bench] byte-identical weights, {compared} identical predictions");

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = serial_s / parallel_s.max(1e-9);
    let speedup_gated = !smoke && cores >= 2;
    eprintln!(
        "[train_bench] serial {serial_s:.2}s, parallel {parallel_s:.2}s, \
         speedup {speedup:.2}x on {cores} core(s)"
    );
    if speedup_gated {
        assert!(
            speedup >= min_speedup,
            "parallel fit must be >= {min_speedup:.1}x faster (got {speedup:.2}x on {cores} cores)"
        );
    } else {
        eprintln!("[train_bench] speedup gate skipped (smoke={smoke}, cores={cores})");
    }

    let json = format!(
        "{{\"seed\":{seed},\"smoke\":{smoke},\"cores\":{cores},\"threads\":{threads},\
         \"train_addresses\":{},\"test_addresses\":{},\
         \"fit_serial_s\":{serial_s:.3},\"fit_parallel_s\":{parallel_s:.3},\
         \"speedup\":{speedup:.3},\"speedup_gated\":{speedup_gated},\
         \"min_speedup\":{min_speedup},\"byte_identical\":true,\
         \"predictions_compared\":{compared}}}",
        train.len(),
        test.len(),
    );
    bac_bench::write_results_atomic(&out, &json);
    println!("wrote {out}");
}
