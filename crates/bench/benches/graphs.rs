//! Criterion microbenchmarks of the graph-algorithm substrate: SFE,
//! centralities, normalised adjacency, and the UTXO simulator itself.

use baclassifier::construction::sfe::sfe;
use btcsim::{SimConfig, Simulator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphalgo::{all_centralities, normalized_adjacency, propagate_features, Graph};
use std::hint::black_box;

/// A random-ish sparse graph of `n` nodes with ~3n edges.
fn sparse_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_edge(i, (i * 7 + 1) % n, 1.0);
        g.add_edge(i, (i * 13 + 5) % n, 1.0);
        g.add_edge(i, (i / 2 + 3) % n, 1.0);
    }
    g
}

fn bench_sfe(c: &mut Criterion) {
    let mut group = c.benchmark_group("sfe");
    for n in [10usize, 100, 1000] {
        let values: Vec<f64> = (0..n)
            .map(|i| ((i * 31) % 97) as f64 * 0.37 + 0.01)
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &values, |b, v| {
            b.iter(|| black_box(sfe(v)))
        });
    }
    group.finish();
}

fn bench_centralities(c: &mut Criterion) {
    let mut group = c.benchmark_group("centralities");
    for n in [50usize, 150, 400] {
        let g = sparse_graph(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(all_centralities(g)))
        });
    }
    group.finish();
}

fn bench_propagation(c: &mut Criterion) {
    let g = sparse_graph(200);
    let adj = normalized_adjacency(&g);
    let x: Vec<f32> = (0..200 * 24).map(|i| (i as f32 * 0.01).sin()).collect();
    c.bench_function("propagate_k3_200x24", |b| {
        b.iter(|| black_box(propagate_features(&adj, &x, 24, 3)))
    });
}

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("simulate_60_blocks", |b| {
        b.iter(|| {
            let sim = Simulator::run_to_completion(SimConfig::tiny(5));
            black_box(sim.chain().num_transactions())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sfe, bench_centralities, bench_propagation, bench_simulator
}
criterion_main!(benches);
