//! Criterion microbenchmarks of the learning stack: GFN/GCN/DiffPool
//! forward+backward per graph (the per-epoch cost behind Fig. 5) and the
//! sequence heads per address (behind Fig. 6).

use baclassifier::classify::{all_heads, SequenceHead};
use baclassifier::config::ConstructionConfig;
use baclassifier::construction::construct_address_graphs;
use baclassifier::features::{graph_tensors, NODE_FEAT_DIM};
use baclassifier::models::{DiffPool, Gcn, Gfn, GraphModel};
use btcsim::{Dataset, SimConfig, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};
use numnet::{Matrix, Tape};
use std::hint::black_box;

fn sample_tensors() -> baclassifier::features::GraphTensors {
    let sim = Simulator::run_to_completion(SimConfig::tiny(99));
    let ds = Dataset::from_simulator(&sim, 3);
    let record = ds
        .records
        .iter()
        .max_by_key(|r| r.num_txs())
        .expect("non-empty")
        .clone();
    let (graphs, _) = construct_address_graphs(&record, &ConstructionConfig::default());
    graph_tensors(&graphs[0])
}

fn bench_gnn_forward_backward(c: &mut Criterion) {
    let tensors = sample_tensors();
    let models: Vec<Box<dyn GraphModel>> = vec![
        Box::new(Gfn::new(NODE_FEAT_DIM, 2, 64, 32, 0)),
        Box::new(Gcn::new(NODE_FEAT_DIM, 64, 32, 0)),
        Box::new(DiffPool::new(NODE_FEAT_DIM, 64, 8, 32, 0)),
    ];
    let mut group = c.benchmark_group("gnn_step");
    for model in &models {
        let prep = model.prepare(&tensors);
        group.bench_function(format!("{}_fwd_bwd", model.name()), |b| {
            b.iter(|| {
                let tape = Tape::new();
                let loss = model
                    .logits(&tape, black_box(&prep))
                    .softmax_cross_entropy(&[1]);
                loss.backward();
                for p in model.params() {
                    p.zero_grad();
                }
            })
        });
        group.bench_function(format!("{}_prepare", model.name()), |b| {
            b.iter(|| black_box(model.prepare(&tensors)))
        });
    }
    group.finish();
}

fn bench_heads(c: &mut Criterion) {
    let seq: Vec<Matrix> = (0..8)
        .map(|t| Matrix::from_fn(1, 32, |_, c| ((t * 13 + c) as f32 * 0.17).sin()))
        .collect();
    let mut group = c.benchmark_group("head_step");
    for head in all_heads(32, 32, 0) {
        let head: Box<dyn SequenceHead> = head;
        group.bench_function(format!("{}_fwd_bwd", head.name()), |b| {
            b.iter(|| {
                let tape = Tape::new();
                let loss = head
                    .logits(&tape, black_box(&seq))
                    .softmax_cross_entropy(&[2]);
                loss.backward();
                for p in head.params() {
                    p.zero_grad();
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gnn_forward_backward, bench_heads
}
criterion_main!(benches);
