//! Criterion microbenchmarks of the four construction stages (Table V) and
//! the slice-size / threshold ablations called out in DESIGN.md §4.

use baclassifier::config::ConstructionConfig;
use baclassifier::construction::{
    augment_with_centralities, compress_multi_tx, compress_single_tx, construct_address_graphs,
    extract_original_graphs, MultiCompressParams,
};
use btcsim::{Dataset, SimConfig, Simulator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_dataset() -> Dataset {
    let sim = Simulator::run_to_completion(SimConfig::tiny(77));
    Dataset::from_simulator(&sim, 3)
}

/// The busiest record (most transactions) — worst-case construction input.
fn busiest(ds: &Dataset) -> btcsim::AddressRecord {
    ds.records
        .iter()
        .max_by_key(|r| r.num_txs())
        .expect("non-empty dataset")
        .clone()
}

fn bench_stages(c: &mut Criterion) {
    let ds = bench_dataset();
    let record = busiest(&ds);
    let mut group = c.benchmark_group("construction_stages");

    group.bench_function("stage1_extract", |b| {
        b.iter(|| extract_original_graphs(black_box(&record), 100))
    });

    let originals = extract_original_graphs(&record, 100);
    group.bench_function("stage2_single_compress", |b| {
        b.iter(|| {
            for g in &originals {
                black_box(compress_single_tx(g));
            }
        })
    });

    let singles: Vec<_> = originals.iter().map(compress_single_tx).collect();
    group.bench_function("stage3_multi_compress", |b| {
        b.iter(|| {
            for g in &singles {
                black_box(compress_multi_tx(g, MultiCompressParams::default()));
            }
        })
    });

    let compressed: Vec<_> = singles
        .iter()
        .map(|g| compress_multi_tx(g, MultiCompressParams::default()))
        .collect();
    group.bench_function("stage4_augment", |b| {
        b.iter(|| {
            for g in &compressed {
                let mut g = g.clone();
                augment_with_centralities(&mut g);
                black_box(g);
            }
        })
    });

    group.bench_function("full_pipeline", |b| {
        b.iter(|| construct_address_graphs(black_box(&record), &ConstructionConfig::default()))
    });
    group.finish();
}

fn bench_slice_size_ablation(c: &mut Criterion) {
    let ds = bench_dataset();
    let record = busiest(&ds);
    let mut group = c.benchmark_group("ablation_slice_size");
    for slice in [25usize, 50, 100, 200] {
        let cfg = ConstructionConfig {
            slice_size: slice,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(slice), &cfg, |b, cfg| {
            b.iter(|| construct_address_graphs(black_box(&record), cfg))
        });
    }
    group.finish();
}

fn bench_psi_ablation(c: &mut Criterion) {
    let ds = bench_dataset();
    let record = busiest(&ds);
    let mut group = c.benchmark_group("ablation_psi");
    for psi in [0.3f64, 0.5, 0.8] {
        let cfg = ConstructionConfig {
            psi,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(psi), &cfg, |b, cfg| {
            b.iter(|| construct_address_graphs(black_box(&record), cfg))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_stages, bench_slice_size_ablation, bench_psi_ablation
}
criterion_main!(benches);
