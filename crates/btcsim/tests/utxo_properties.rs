//! Property-based tests of the UTXO model: value conservation, double-spend
//! safety, and chain validity under arbitrary randomized transaction flows.

use btcsim::{Address, Amount, Block, Chain, OutPoint, Transaction, TxIn, TxOut, UtxoSet};
use proptest::prelude::*;

/// Apply a scripted sequence of (coinbase | spend-fraction) operations and
/// check conservation at every step.
fn run_session(ops: &[(bool, u8, u8)]) -> Result<(), TestCaseError> {
    let mut set = UtxoSet::new();
    let mut live: Vec<(OutPoint, Address, Amount)> = Vec::new();
    let mut issued = Amount::ZERO;
    let mut burned = Amount::ZERO;
    let mut nonce = 0u64;

    for &(coinbase, sel, frac) in ops {
        nonce += 1;
        if coinbase || live.is_empty() {
            let value = Amount::from_sats(1_000 + sel as u64 * 13);
            let tx = Transaction::new(
                vec![],
                vec![TxOut {
                    address: Address(nonce),
                    value,
                }],
                nonce,
                nonce,
            );
            set.apply(&tx).expect("coinbase always valid");
            live.push((
                OutPoint {
                    txid: tx.txid,
                    vout: 0,
                },
                Address(nonce),
                value,
            ));
            issued += value;
        } else {
            let idx = sel as usize % live.len();
            let (op, addr, value) = live.swap_remove(idx);
            let fee = value.mul_f64(frac as f64 / 512.0); // ≤ ~50% fee
            let out_value = value - fee;
            let dest = Address(1_000_000 + nonce);
            let tx = Transaction::new(
                vec![TxIn {
                    prevout: op,
                    address: addr,
                    value,
                }],
                vec![TxOut {
                    address: dest,
                    value: out_value,
                }],
                nonce,
                nonce,
            );
            set.apply(&tx).expect("spend of live utxo is valid");
            burned += fee;
            if !out_value.is_zero() {
                live.push((
                    OutPoint {
                        txid: tx.txid,
                        vout: 0,
                    },
                    dest,
                    out_value,
                ));
            }
            // Spending the same outpoint again must fail.
            let double = Transaction::new(
                vec![TxIn {
                    prevout: op,
                    address: addr,
                    value,
                }],
                vec![TxOut {
                    address: dest,
                    value: out_value,
                }],
                nonce,
                nonce + 1_000_000,
            );
            prop_assert!(set.apply(&double).is_err(), "double spend accepted");
        }
        // Conservation: tracked value == issued − burned.
        prop_assert_eq!(set.total_value() + burned, issued);
        prop_assert_eq!(set.len(), live.len());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn utxo_value_is_conserved_under_random_flows(
        ops in proptest::collection::vec((any::<bool>(), any::<u8>(), any::<u8>()), 1..80)
    ) {
        run_session(&ops)?;
    }

    #[test]
    fn chain_accepts_only_monotone_heights_and_times(
        heights in proptest::collection::vec(0u64..5, 1..20),
    ) {
        let mut chain = Chain::new();
        let mut expected = 0u64;
        for (i, &h_offset) in heights.iter().enumerate() {
            let height = expected + h_offset;
            let block = Block { height, timestamp: i as u64 * 600, txs: vec![] };
            let ok = chain.append(block).is_ok();
            prop_assert_eq!(ok, h_offset == 0, "height {} expected {}", height, expected);
            if ok {
                expected += 1;
            }
        }
        prop_assert_eq!(chain.height(), expected);
    }

    #[test]
    fn overspending_is_always_rejected(extra in 1u64..1_000_000) {
        let mut set = UtxoSet::new();
        let cb = Transaction::new(
            vec![],
            vec![TxOut { address: Address(1), value: Amount::from_sats(5_000) }],
            0,
            0,
        );
        set.apply(&cb).unwrap();
        let tx = Transaction::new(
            vec![TxIn {
                prevout: OutPoint { txid: cb.txid, vout: 0 },
                address: Address(1),
                value: Amount::from_sats(5_000),
            }],
            vec![TxOut { address: Address(2), value: Amount::from_sats(5_000 + extra) }],
            1,
            1,
        );
        prop_assert!(set.apply(&tx).is_err());
        // And the set is untouched by the failed apply.
        prop_assert_eq!(set.total_value(), Amount::from_sats(5_000));
    }
}
