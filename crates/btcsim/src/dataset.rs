//! Labeled dataset extraction: per-address chronological transaction
//! histories with ground-truth behavior labels, plus the stratified
//! sampling/splitting used throughout the paper's evaluation (§IV-B).

use crate::address::{Address, Label};
use crate::amount::Amount;
use crate::block::Chain;
use crate::sim::Simulator;
use crate::tx::Txid;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// A transaction as seen by the classifier: resolved input/output address
/// and value pairs plus the timestamp. This is everything BAClassifier's
/// graph construction consumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxView {
    pub txid: Txid,
    pub timestamp: u64,
    pub inputs: Vec<(Address, Amount)>,
    pub outputs: Vec<(Address, Amount)>,
}

/// One labeled address with its chronological transaction history.
#[derive(Clone, Debug)]
pub struct AddressRecord {
    pub address: Address,
    pub label: Label,
    /// Chronological (block order) transactions involving this address.
    pub txs: Vec<TxView>,
}

impl AddressRecord {
    pub fn num_txs(&self) -> usize {
        self.txs.len()
    }
}

/// The extracted dataset.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    pub records: Vec<AddressRecord>,
}

impl Dataset {
    /// Extract every labeled address with at least `min_txs` transactions.
    pub fn from_simulator(sim: &Simulator, min_txs: usize) -> Self {
        Self::from_chain(sim.chain(), &sim.labels(), min_txs)
    }

    /// Extract from a chain with an explicit label map.
    pub fn from_chain(chain: &Chain, labels: &BTreeMap<Address, Label>, min_txs: usize) -> Self {
        let mut records = Vec::new();
        for (&address, &label) in labels {
            let history = chain.address_history(address);
            if history.len() < min_txs {
                continue;
            }
            let txs: Vec<TxView> = history
                .iter()
                .filter_map(|&txid| chain.transaction(txid))
                .map(|tx| TxView {
                    txid: tx.txid,
                    timestamp: tx.timestamp,
                    inputs: tx.inputs.iter().map(|i| (i.address, i.value)).collect(),
                    outputs: tx.outputs.iter().map(|o| (o.address, o.value)).collect(),
                })
                .collect();
            records.push(AddressRecord {
                address,
                label,
                txs,
            });
        }
        Dataset { records }
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Address count per class, in [`Label::ALL`] order (paper Table I).
    pub fn class_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for r in &self.records {
            counts[r.label.index()] += 1;
        }
        counts
    }

    /// Random stratified sample of about `total` addresses, preserving the
    /// class proportions (paper §IV-B: "random stratified sampling based on
    /// label types"). Classes with fewer members than their share contribute
    /// everything they have.
    pub fn stratified_sample(&self, total: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let counts = self.class_counts();
        let n = self.len().max(1);
        let mut records = Vec::new();
        for label in Label::ALL {
            let class: Vec<&AddressRecord> =
                self.records.iter().filter(|r| r.label == label).collect();
            let want = ((counts[label.index()] as f64 / n as f64) * total as f64).round() as usize;
            let take = want.min(class.len());
            let mut idx: Vec<usize> = (0..class.len()).collect();
            idx.shuffle(&mut rng);
            for &i in idx.iter().take(take) {
                records.push(class[i].clone());
            }
        }
        Dataset { records }
    }

    /// Stratified train/test split: `test_frac` of each class goes to the
    /// test set (paper: 80/20).
    pub fn stratified_split(&self, test_frac: f64, seed: u64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&test_frac), "test_frac out of range");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train = Vec::new();
        let mut test = Vec::new();
        for label in Label::ALL {
            let mut class: Vec<AddressRecord> = self
                .records
                .iter()
                .filter(|r| r.label == label)
                .cloned()
                .collect();
            class.shuffle(&mut rng);
            let n_test = (class.len() as f64 * test_frac).round() as usize;
            for (i, r) in class.into_iter().enumerate() {
                if i < n_test {
                    test.push(r);
                } else {
                    train.push(r);
                }
            }
        }
        // Shuffle across classes so training batches are mixed.
        train.shuffle(&mut rng);
        test.shuffle(&mut rng);
        (Dataset { records: train }, Dataset { records: test })
    }

    /// Labels in record order (classifier targets).
    pub fn labels(&self) -> Vec<usize> {
        self.records.iter().map(|r| r.label.index()).collect()
    }

    /// Export the dataset as two CSV files next to `stem`:
    /// `<stem>.addresses.csv` (address, label, tx count, first/last
    /// timestamps) and `<stem>.transactions.csv` (one row per address/tx
    /// side/counterparty edge — the exact relation graph construction
    /// consumes). Mirrors the release format of the paper's dataset.
    pub fn write_csv(&self, stem: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write;
        let addr_path = stem.with_extension("addresses.csv");
        let mut w = std::io::BufWriter::new(std::fs::File::create(&addr_path)?);
        writeln!(w, "address,label,num_txs,first_timestamp,last_timestamp")?;
        for r in &self.records {
            writeln!(
                w,
                "{},{},{},{},{}",
                r.address.0,
                r.label,
                r.num_txs(),
                r.txs.first().map_or(0, |t| t.timestamp),
                r.txs.last().map_or(0, |t| t.timestamp),
            )?;
        }
        w.flush()?;

        let tx_path = stem.with_extension("transactions.csv");
        let mut w = std::io::BufWriter::new(std::fs::File::create(&tx_path)?);
        writeln!(w, "address,txid,timestamp,side,counterparty,value_sats")?;
        for r in &self.records {
            for tx in &r.txs {
                for &(a, v) in &tx.inputs {
                    writeln!(
                        w,
                        "{},{},{},in,{},{}",
                        r.address.0,
                        tx.txid,
                        tx.timestamp,
                        a.0,
                        v.sats()
                    )?;
                }
                for &(a, v) in &tx.outputs {
                    writeln!(
                        w,
                        "{},{},{},out,{},{}",
                        r.address.0,
                        tx.txid,
                        tx.timestamp,
                        a.0,
                        v.sats()
                    )?;
                }
            }
        }
        w.flush()
    }

    /// Load a dataset exported by [`Dataset::write_csv`] (both files must be
    /// present next to `stem`). Inverse of `write_csv`; round-trips exactly.
    pub fn read_csv(stem: &std::path::Path) -> Result<Self, CsvError> {
        use std::collections::BTreeMap;
        // Pass 1: addresses + labels.
        let addr_text = std::fs::read_to_string(stem.with_extension("addresses.csv"))?;
        let mut labels: BTreeMap<u64, Label> = BTreeMap::new();
        for (lineno, line) in addr_text.lines().enumerate().skip(1) {
            let mut f = line.split(',');
            let addr = parse_address_field(f.next(), lineno)?;
            let label_name = f.next().ok_or(CsvError::Malformed(lineno))?;
            let label = Label::ALL
                .into_iter()
                .find(|l| l.name() == label_name)
                .ok_or(CsvError::Malformed(lineno))?;
            labels.insert(addr, label);
        }
        // Pass 2: transaction edges, regrouped into TxViews per address.
        let tx_text = std::fs::read_to_string(stem.with_extension("transactions.csv"))?;
        // (address -> ordered txids) and (address, txid) -> TxView.
        let mut order: BTreeMap<u64, Vec<Txid>> = BTreeMap::new();
        let mut views: BTreeMap<(u64, Txid), TxView> = BTreeMap::new();
        for (lineno, line) in tx_text.lines().enumerate().skip(1) {
            let mut f = line.split(',');
            let addr = parse_address_field(f.next(), lineno)?;
            let txid = Txid(
                u64::from_str_radix(f.next().ok_or(CsvError::Malformed(lineno))?, 16)
                    .map_err(|_| CsvError::Malformed(lineno))?,
            );
            let timestamp: u64 = f
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(CsvError::Malformed(lineno))?;
            let side = f.next().ok_or(CsvError::Malformed(lineno))?;
            let counterparty = parse_address_field(f.next(), lineno)?;
            let sats: u64 = f
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(CsvError::Malformed(lineno))?;
            let view = views.entry((addr, txid)).or_insert_with(|| {
                order.entry(addr).or_default().push(txid);
                TxView {
                    txid,
                    timestamp,
                    inputs: Vec::new(),
                    outputs: Vec::new(),
                }
            });
            let entry = (Address(counterparty), Amount::from_sats(sats));
            match side {
                "in" => view.inputs.push(entry),
                "out" => view.outputs.push(entry),
                _ => return Err(CsvError::Malformed(lineno)),
            }
        }
        let records = labels
            .into_iter()
            .map(|(addr, label)| {
                let txs = order
                    .remove(&addr)
                    .unwrap_or_default()
                    .into_iter()
                    .filter_map(|txid| views.remove(&(addr, txid)))
                    .collect();
                AddressRecord {
                    address: Address(addr),
                    label,
                    txs,
                }
            })
            .collect();
        Ok(Dataset { records })
    }
}

fn parse_address_field(field: Option<&str>, lineno: usize) -> Result<u64, CsvError> {
    field
        .and_then(|s| s.parse().ok())
        .ok_or(CsvError::Malformed(lineno))
}

/// Errors from [`Dataset::read_csv`].
#[derive(Debug)]
pub enum CsvError {
    Io(std::io::Error),
    /// Unparseable row at this 0-based line number.
    Malformed(usize),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Malformed(line) => write!(f, "malformed CSV at line {line}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimConfig;

    fn small_dataset() -> Dataset {
        let sim = Simulator::run_to_completion(SimConfig::tiny(3));
        Dataset::from_simulator(&sim, 2)
    }

    #[test]
    fn extraction_yields_all_classes() {
        let ds = small_dataset();
        assert!(!ds.is_empty());
        let counts = ds.class_counts();
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 0, "class {i} empty: {counts:?}");
        }
    }

    #[test]
    fn histories_are_chronological() {
        let ds = small_dataset();
        for r in &ds.records {
            let ts: Vec<u64> = r.txs.iter().map(|t| t.timestamp).collect();
            assert!(ts.windows(2).all(|w| w[0] <= w[1]), "history out of order");
        }
    }

    #[test]
    fn every_tx_involves_its_address() {
        let ds = small_dataset();
        for r in &ds.records {
            for tx in &r.txs {
                let involved = tx.inputs.iter().any(|&(a, _)| a == r.address)
                    || tx.outputs.iter().any(|&(a, _)| a == r.address);
                assert!(
                    involved,
                    "tx {:?} does not involve {:?}",
                    tx.txid, r.address
                );
            }
        }
    }

    #[test]
    fn min_txs_filter_applies() {
        let sim = Simulator::run_to_completion(SimConfig::tiny(3));
        let ds5 = Dataset::from_chain(sim.chain(), &sim.labels(), 5);
        assert!(ds5.records.iter().all(|r| r.num_txs() >= 5));
        let ds1 = Dataset::from_chain(sim.chain(), &sim.labels(), 1);
        assert!(ds1.len() >= ds5.len());
    }

    #[test]
    fn stratified_sample_preserves_proportions_roughly() {
        let ds = small_dataset();
        let sample = ds.stratified_sample(ds.len() / 2, 11);
        let full = ds.class_counts();
        let got = sample.class_counts();
        for i in 0..4 {
            if full[i] >= 4 {
                let full_frac = full[i] as f64 / ds.len() as f64;
                let got_frac = got[i] as f64 / sample.len() as f64;
                assert!(
                    (full_frac - got_frac).abs() < 0.15,
                    "class {i}: {full_frac} vs {got_frac}"
                );
            }
        }
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let ds = small_dataset();
        let (train, test) = ds.stratified_split(0.2, 5);
        assert_eq!(train.len() + test.len(), ds.len());
        let train_addrs: std::collections::HashSet<_> =
            train.records.iter().map(|r| r.address).collect();
        assert!(test
            .records
            .iter()
            .all(|r| !train_addrs.contains(&r.address)));
        // Roughly 20% test.
        let frac = test.len() as f64 / ds.len() as f64;
        assert!((frac - 0.2).abs() < 0.1, "test fraction {frac}");
    }

    #[test]
    fn csv_export_roundtrips_row_counts() {
        let ds = small_dataset();
        let stem = std::env::temp_dir().join(format!("btcsim_csv_{}", std::process::id()));
        ds.write_csv(&stem).unwrap();
        let addr_csv = std::fs::read_to_string(stem.with_extension("addresses.csv")).unwrap();
        // header + one line per record
        assert_eq!(addr_csv.lines().count(), ds.len() + 1);
        assert!(addr_csv.starts_with("address,label,"));
        let tx_csv = std::fs::read_to_string(stem.with_extension("transactions.csv")).unwrap();
        let expected_rows: usize = ds
            .records
            .iter()
            .flat_map(|r| r.txs.iter())
            .map(|t| t.inputs.len() + t.outputs.len())
            .sum();
        assert_eq!(tx_csv.lines().count(), expected_rows + 1);
        std::fs::remove_file(stem.with_extension("addresses.csv")).ok();
        std::fs::remove_file(stem.with_extension("transactions.csv")).ok();
    }

    #[test]
    fn csv_roundtrip_is_lossless() {
        let ds = small_dataset();
        let stem = std::env::temp_dir().join(format!("btcsim_rt_{}", std::process::id()));
        ds.write_csv(&stem).unwrap();
        let loaded = Dataset::read_csv(&stem).unwrap();
        assert_eq!(loaded.len(), ds.len());
        assert_eq!(loaded.class_counts(), ds.class_counts());
        // Records are keyed by address in both; compare a sample fully.
        let by_addr: std::collections::BTreeMap<_, _> =
            ds.records.iter().map(|r| (r.address, r)).collect();
        for r in loaded.records.iter().take(40) {
            let orig = by_addr[&r.address];
            assert_eq!(r.label, orig.label);
            assert_eq!(r.txs.len(), orig.txs.len());
            for (a, b) in r.txs.iter().zip(&orig.txs) {
                assert_eq!(a.txid, b.txid);
                assert_eq!(a.timestamp, b.timestamp);
                assert_eq!(a.inputs, b.inputs);
                assert_eq!(a.outputs, b.outputs);
            }
        }
        std::fs::remove_file(stem.with_extension("addresses.csv")).ok();
        std::fs::remove_file(stem.with_extension("transactions.csv")).ok();
    }

    #[test]
    fn read_csv_rejects_garbage() {
        let stem = std::env::temp_dir().join(format!("btcsim_bad_{}", std::process::id()));
        std::fs::write(
            stem.with_extension("addresses.csv"),
            "header
not,a,row
",
        )
        .unwrap();
        std::fs::write(
            stem.with_extension("transactions.csv"),
            "header
",
        )
        .unwrap();
        assert!(matches!(
            Dataset::read_csv(&stem),
            Err(CsvError::Malformed(_))
        ));
        std::fs::remove_file(stem.with_extension("addresses.csv")).ok();
        std::fs::remove_file(stem.with_extension("transactions.csv")).ok();
    }

    #[test]
    fn split_is_deterministic() {
        let ds = small_dataset();
        let (a_train, _) = ds.stratified_split(0.2, 5);
        let (b_train, _) = ds.stratified_split(0.2, 5);
        let a: Vec<_> = a_train.records.iter().map(|r| r.address).collect();
        let b: Vec<_> = b_train.records.iter().map(|r| r.address).collect();
        assert_eq!(a, b);
    }
}
