//! Bitcoin addresses and behavior labels.
//!
//! Real addresses are hashes of public keys; BAClassifier never inspects the
//! key material, only which address participates in which transaction. The
//! simulator therefore uses opaque `u64` identities with a base58-check-style
//! display encoding (see DESIGN.md, substitution table).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An opaque bitcoin address identity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Address(pub u64);

const BASE58: &[u8] = b"123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

impl Address {
    /// Base58-style rendering with the classic `1` prefix, e.g. `1Ab3…`.
    pub fn encoded(&self) -> String {
        let mut s = Vec::with_capacity(12);
        // Mix the id so consecutive ids don't share prefixes.
        let mut x = self.0.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) | 1;
        for _ in 0..11 {
            s.push(BASE58[(x % 58) as usize]);
            x /= 58;
            if x == 0 {
                break;
            }
        }
        let mut out = String::from("1");
        out.extend(s.iter().rev().map(|&b| b as char));
        out
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encoded())
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "addr#{}", self.0)
    }
}

/// The four address-behavior categories of the paper's dataset (Table I),
/// plus the unlabeled background population.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Label {
    /// Exchange-held: cold/hot wallets, deposit and withdrawal service.
    Exchange,
    /// Mining-pool-held: reward collection and payout distribution.
    Mining,
    /// Gambling sites and gamblers: bet and win flows.
    Gambling,
    /// Other services: wallets, coin mixers, dark-web, lending.
    Service,
}

impl Label {
    /// All labels in canonical (paper Table I) order.
    pub const ALL: [Label; 4] = [
        Label::Exchange,
        Label::Mining,
        Label::Gambling,
        Label::Service,
    ];

    /// Dense class index used by every classifier in the workspace.
    pub fn index(self) -> usize {
        match self {
            Label::Exchange => 0,
            Label::Mining => 1,
            Label::Gambling => 2,
            Label::Service => 3,
        }
    }

    /// Inverse of [`Label::index`].
    pub fn from_index(i: usize) -> Option<Label> {
        Label::ALL.get(i).copied()
    }

    pub fn name(self) -> &'static str {
        match self {
            Label::Exchange => "Exchange",
            Label::Mining => "Mining",
            Label::Gambling => "Gambling",
            Label::Service => "Service",
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_starts_with_one_and_is_base58() {
        let s = Address(12345).encoded();
        assert!(s.starts_with('1'));
        assert!(s.len() >= 2 && s.len() <= 13);
        assert!(s.bytes().all(|b| BASE58.contains(&b) || b == b'1'));
        // no ambiguous characters
        for banned in ['0', 'O', 'I', 'l'] {
            assert!(!s.contains(banned), "{s} contains {banned}");
        }
    }

    #[test]
    fn encoding_is_injective_on_sample() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(Address(i).encoded()), "collision at {i}");
        }
    }

    #[test]
    fn label_index_roundtrip() {
        for l in Label::ALL {
            assert_eq!(Label::from_index(l.index()), Some(l));
        }
        assert_eq!(Label::from_index(4), None);
    }

    #[test]
    fn label_order_matches_table1() {
        assert_eq!(
            Label::ALL.map(|l| l.name()),
            ["Exchange", "Mining", "Gambling", "Service"]
        );
    }
}
