//! The block-stepped simulator: wires actors, mines blocks, tracks activity.

use crate::actors::exchange::ExchangeConfig;
use crate::actors::gambling::GamblingConfig;
use crate::actors::mining::MiningConfig;
use crate::actors::retail::RetailConfig;
use crate::actors::service::ServiceConfig;
use crate::actors::{
    Actor, ExchangeActor, GamblingActor, MiningPoolActor, RetailActor, ServiceActor, Shared,
    StepCtx,
};
use crate::address::{Address, Label};
use crate::amount::Amount;
use crate::block::{Block, Chain, BLOCK_INTERVAL_SECS};
use crate::dist;
use crate::mempool::Mempool;
use crate::tx::{Transaction, TxOut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Simulation parameters. The defaults produce a small but fully-featured
/// economy; scale `blocks` and the actor counts up for larger datasets.
#[derive(Clone, Debug)]
pub struct SimConfig {
    pub seed: u64,
    /// Number of blocks to mine after genesis.
    pub blocks: u64,
    pub num_exchanges: usize,
    pub num_pools: usize,
    pub num_gambling: usize,
    pub num_mixers: usize,
    pub retail: RetailConfig,
    /// Initial funds premined to each retail user (BTC).
    pub user_initial_btc: f64,
    /// Initial funds premined to each gambler (BTC).
    pub gambler_initial_btc: f64,
    /// Float premined to each gambling house (BTC).
    pub house_float_btc: f64,
    /// Block subsidy (BTC).
    pub block_reward_btc: f64,
    /// Miner reward addresses per pool (paper Table I: the Mining class).
    pub miners_per_pool: usize,
    /// Blocks between reward halvings (0 disables halving). Bitcoin uses
    /// 210,000; simulations can compress the schedule to see the effect.
    pub halving_interval: u64,
    /// Max transactions per block (0 = unbounded). A bound creates fee-rate
    /// congestion: cheap transactions wait in the mempool.
    pub max_txs_per_block: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            blocks: 400,
            num_exchanges: 2,
            num_pools: 2,
            num_gambling: 2,
            num_mixers: 2,
            retail: RetailConfig::default(),
            user_initial_btc: 8.0,
            gambler_initial_btc: 3.0,
            house_float_btc: 200.0,
            block_reward_btc: 6.25,
            miners_per_pool: 120,
            halving_interval: 0,
            max_txs_per_block: 0,
        }
    }
}

impl SimConfig {
    /// A tiny configuration for fast unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            blocks: 60,
            num_exchanges: 1,
            num_pools: 1,
            num_gambling: 1,
            num_mixers: 1,
            retail: RetailConfig {
                num_users: 40,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// Per-block activity counters (drives the paper's Fig. 1).
#[derive(Clone, Debug)]
pub struct ActivityPoint {
    pub height: u64,
    pub timestamp: u64,
    /// Unique addresses appearing in this block's transactions.
    pub active_addresses: usize,
    /// Transactions in this block.
    pub transactions: usize,
    /// Distinct addresses ever seen up to and including this block.
    pub cumulative_addresses: usize,
}

/// The assembled simulation.
pub struct Simulator {
    cfg: SimConfig,
    rng: StdRng,
    chain: Chain,
    shared: Shared,
    exchanges: Vec<ExchangeActor>,
    pools: Vec<MiningPoolActor>,
    gambling: Vec<GamblingActor>,
    mixers: Vec<ServiceActor>,
    retail: RetailActor,
    nonce: u64,
    activity: Vec<ActivityPoint>,
    pool_weights: dist::ZipfSampler,
    mempool: Mempool,
}

impl Simulator {
    /// Build actors and mine the genesis premine block.
    pub fn new(cfg: SimConfig) -> Self {
        assert!(cfg.num_pools > 0, "at least one mining pool required");
        let rng = StdRng::seed_from_u64(cfg.seed);
        let mut shared = Shared::default();
        let exchanges: Vec<ExchangeActor> = (0..cfg.num_exchanges)
            .map(|id| {
                ExchangeActor::new(
                    ExchangeConfig {
                        id,
                        ..Default::default()
                    },
                    &mut shared,
                )
            })
            .collect();
        let pools: Vec<MiningPoolActor> = (0..cfg.num_pools)
            .map(|_| {
                let mc = MiningConfig {
                    num_miners: cfg.miners_per_pool,
                    ..Default::default()
                };
                MiningPoolActor::new(mc, &mut shared)
            })
            .collect();
        let gambling: Vec<GamblingActor> = (0..cfg.num_gambling)
            .map(|id| {
                GamblingActor::new(
                    GamblingConfig {
                        id,
                        ..Default::default()
                    },
                    &mut shared,
                )
            })
            .collect();
        let mixers: Vec<ServiceActor> = (0..cfg.num_mixers)
            .map(|id| {
                ServiceActor::new(
                    ServiceConfig {
                        id,
                        ..Default::default()
                    },
                    &mut shared,
                )
            })
            .collect();
        let retail = RetailActor::new(cfg.retail.clone(), &mut shared);

        let pool_weights = dist::ZipfSampler::new(cfg.num_pools, 1.1);
        let mut sim = Self {
            cfg,
            rng,
            chain: Chain::new(),
            shared,
            exchanges,
            pools,
            gambling,
            mixers,
            retail,
            nonce: 0,
            activity: Vec::new(),
            pool_weights,
            mempool: Mempool::new(),
        };
        sim.mine_genesis();
        sim
    }

    fn mine_genesis(&mut self) {
        // Premine: fund retail users, gamblers, and house floats so the
        // economy starts liquid.
        let mut outputs = Vec::new();
        for addr in self.retail.funding_addresses() {
            outputs.push(TxOut {
                address: addr,
                value: Amount::from_btc(self.cfg.user_initial_btc),
            });
        }
        for g in &self.gambling {
            for addr in g.gambler_addresses() {
                outputs.push(TxOut {
                    address: addr,
                    value: Amount::from_btc(self.cfg.gambler_initial_btc),
                });
            }
            outputs.push(TxOut {
                address: g.house_address(),
                value: Amount::from_btc(self.cfg.house_float_btc),
            });
        }
        let premine = Transaction::new(vec![], outputs, 0, self.next_nonce());
        self.confirm_all(&premine);
        let block = Block {
            height: 0,
            timestamp: 0,
            txs: vec![premine],
        };
        self.record_activity(&block);
        self.chain.append(block).expect("genesis must validate");
    }

    fn next_nonce(&mut self) -> u64 {
        let n = self.nonce;
        self.nonce += 1;
        n
    }

    fn confirm_all(&mut self, tx: &Transaction) {
        for e in &mut self.exchanges {
            e.on_confirmed(tx);
        }
        for p in &mut self.pools {
            p.on_confirmed(tx);
        }
        for g in &mut self.gambling {
            g.on_confirmed(tx);
        }
        for m in &mut self.mixers {
            m.on_confirmed(tx);
        }
        self.retail.on_confirmed(tx);
    }

    fn record_activity(&mut self, block: &Block) {
        let mut active = std::collections::HashSet::new();
        for tx in &block.txs {
            for a in tx.input_addresses().chain(tx.output_addresses()) {
                active.insert(a);
            }
        }
        self.activity.push(ActivityPoint {
            height: block.height,
            timestamp: block.timestamp,
            active_addresses: active.len(),
            transactions: block.txs.len(),
            cumulative_addresses: 0, // filled after append
        });
    }

    /// Mine one block: coinbase to a weighted-random pool, step every actor,
    /// validate and append.
    pub fn step_block(&mut self) {
        let height = self.chain.height();
        let jitter = self.rng.gen_range(0..BLOCK_INTERVAL_SECS / 3);
        let timestamp = self.chain.tip_timestamp() + BLOCK_INTERVAL_SECS + jitter;

        let mut txs = Vec::new();
        // Coinbase: block reward (after halvings) to the winning pool.
        let winner = self.pool_weights.sample(&mut self.rng);
        let coinbase = Transaction::new(
            vec![],
            vec![TxOut {
                address: self.pools[winner].reward_address(),
                value: self.block_reward_at(height),
            }],
            timestamp,
            self.next_nonce(),
        );
        txs.push(coinbase);

        // Step actors. Exchanges first so fresh deposit addresses are
        // published before retail spends; retail last so its requests are
        // served next block (confirmation delay).
        {
            let mut nonce = self.nonce;
            let mut ctx = StepCtx::new(&mut self.rng, timestamp, height, &mut nonce, &mut txs);
            for e in &mut self.exchanges {
                e.step(&mut ctx, &mut self.shared);
            }
            for m in &mut self.mixers {
                m.step(&mut ctx, &mut self.shared);
            }
            for p in &mut self.pools {
                p.step(&mut ctx, &mut self.shared);
            }
            for g in &mut self.gambling {
                g.step(&mut ctx, &mut self.shared);
            }
            self.retail.step(&mut ctx, &mut self.shared);
            self.nonce = nonce;
        }

        // Route through the mempool: bounded blocks leave low-fee
        // transactions pending for later blocks.
        for tx in txs {
            self.mempool.submit(tx);
        }
        let limit = if self.cfg.max_txs_per_block == 0 {
            usize::MAX
        } else {
            self.cfg.max_txs_per_block
        };
        let txs = self.mempool.take_block(limit);
        for tx in &txs {
            self.confirm_all(tx);
        }
        let block = Block {
            height,
            timestamp,
            txs,
        };
        self.record_activity(&block);
        self.chain
            .append(block)
            .expect("simulated block must validate");
        if let Some(last) = self.activity.last_mut() {
            last.cumulative_addresses = self.chain.num_addresses();
        }
    }

    /// Block subsidy at a given height, applying the halving schedule.
    pub fn block_reward_at(&self, height: u64) -> Amount {
        let halvings = height
            .checked_div(self.cfg.halving_interval)
            .unwrap_or(0)
            .min(63);
        Amount::from_sats(Amount::from_btc(self.cfg.block_reward_btc).sats() >> halvings)
    }

    /// Run the configured number of blocks.
    pub fn run(&mut self) {
        for _ in 0..self.cfg.blocks {
            self.step_block();
        }
    }

    /// Convenience: build, run, return.
    pub fn run_to_completion(cfg: SimConfig) -> Simulator {
        let mut sim = Simulator::new(cfg);
        sim.run();
        sim
    }

    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Per-block activity series (Fig. 1 input).
    pub fn activity(&self) -> &[ActivityPoint] {
        &self.activity
    }

    /// Transactions still waiting in the mempool.
    pub fn mempool_depth(&self) -> usize {
        self.mempool.len()
    }

    /// Ground-truth labels for every actor-controlled address.
    pub fn labels(&self) -> BTreeMap<Address, Label> {
        let mut out = BTreeMap::new();
        for e in &self.exchanges {
            e.collect_labels(&mut out);
        }
        for p in &self.pools {
            p.collect_labels(&mut out);
        }
        for g in &self.gambling {
            g.collect_labels(&mut out);
        }
        for m in &self.mixers {
            m.collect_labels(&mut out);
        }
        self.retail.collect_labels(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sim_runs_and_validates() {
        let sim = Simulator::run_to_completion(SimConfig::tiny(7));
        assert_eq!(sim.chain().height(), 61); // genesis + 60
        assert!(
            sim.chain().num_transactions() > 100,
            "economy should be active"
        );
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let a = Simulator::run_to_completion(SimConfig::tiny(9));
        let b = Simulator::run_to_completion(SimConfig::tiny(9));
        assert_eq!(a.chain().num_transactions(), b.chain().num_transactions());
        assert_eq!(a.chain().num_addresses(), b.chain().num_addresses());
        let ta: Vec<_> = a
            .chain()
            .blocks()
            .iter()
            .flat_map(|b| &b.txs)
            .map(|t| t.txid)
            .collect();
        let tb: Vec<_> = b
            .chain()
            .blocks()
            .iter()
            .flat_map(|b| &b.txs)
            .map(|t| t.txid)
            .collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulator::run_to_completion(SimConfig::tiny(1));
        let b = Simulator::run_to_completion(SimConfig::tiny(2));
        let ta: Vec<_> = a
            .chain()
            .blocks()
            .iter()
            .flat_map(|b| &b.txs)
            .map(|t| t.txid)
            .collect();
        let tb: Vec<_> = b
            .chain()
            .blocks()
            .iter()
            .flat_map(|b| &b.txs)
            .map(|t| t.txid)
            .collect();
        assert_ne!(ta, tb);
    }

    #[test]
    fn all_four_labels_present() {
        let sim = Simulator::run_to_completion(SimConfig::tiny(7));
        let labels = sim.labels();
        for l in Label::ALL {
            assert!(
                labels.values().any(|&v| v == l),
                "missing label {l} in simulated economy"
            );
        }
    }

    #[test]
    fn activity_series_covers_every_block() {
        let sim = Simulator::run_to_completion(SimConfig::tiny(7));
        assert_eq!(sim.activity().len(), 61);
        assert!(sim.activity().iter().all(|p| p.transactions >= 1));
        // Cumulative address count never decreases.
        let cums: Vec<_> = sim
            .activity()
            .iter()
            .skip(1)
            .map(|p| p.cumulative_addresses)
            .collect();
        assert!(cums.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn value_is_conserved_modulo_rewards() {
        // Total UTXO value == premine + block rewards − fees; fees are burned
        // in this model, so UTXO total <= premine + rewards and close to it.
        let sim = Simulator::run_to_completion(SimConfig::tiny(7));
        let cfg = sim.config();
        let premine_users = cfg.retail.num_users as f64 * cfg.user_initial_btc;
        let premine_gamblers =
            cfg.num_gambling as f64 * (40.0 * cfg.gambler_initial_btc + cfg.house_float_btc);
        let rewards = cfg.blocks as f64 * cfg.block_reward_btc;
        let ceiling = Amount::from_btc(premine_users + premine_gamblers + rewards);
        let total = sim.chain().utxo().total_value();
        assert!(total <= ceiling, "{total} > {ceiling}");
        // Fees are tiny: at least 99% of issued value should remain.
        assert!(
            total >= ceiling.mul_f64(0.99),
            "{total} too far below {ceiling}"
        );
    }

    #[test]
    fn bounded_blocks_create_backlog_but_stay_valid() {
        let mut cfg = SimConfig::tiny(7);
        cfg.max_txs_per_block = 5;
        let bounded = Simulator::run_to_completion(cfg);
        let unbounded = Simulator::run_to_completion(SimConfig::tiny(7));
        // Congestion: fewer confirmed transactions, pending backlog exists.
        assert!(bounded.chain().num_transactions() < unbounded.chain().num_transactions());
        assert!(
            bounded.mempool_depth() > 0,
            "expected a backlog under congestion"
        );
        // Every confirmed block respected the bound.
        assert!(bounded.chain().blocks().iter().all(|b| b.txs.len() <= 5));
    }

    #[test]
    fn halving_schedule_halves_rewards() {
        let mut cfg = SimConfig::tiny(7);
        cfg.halving_interval = 20;
        let sim = Simulator::new(cfg);
        assert_eq!(sim.block_reward_at(0), Amount::from_btc(6.25));
        assert_eq!(sim.block_reward_at(19), Amount::from_btc(6.25));
        assert_eq!(sim.block_reward_at(20), Amount::from_btc(3.125));
        assert_eq!(sim.block_reward_at(40), Amount::from_btc(1.5625));
        // Deep halvings floor at zero rather than wrapping.
        assert_eq!(sim.block_reward_at(20 * 64).sats(), 0);
    }

    #[test]
    fn halved_economy_issues_less_than_constant_reward() {
        let mut halved_cfg = SimConfig::tiny(7);
        halved_cfg.halving_interval = 15;
        let halved = Simulator::run_to_completion(halved_cfg);
        let flat = Simulator::run_to_completion(SimConfig::tiny(7));
        assert!(halved.chain().utxo().total_value() < flat.chain().utxo().total_value());
    }

    #[test]
    fn timestamps_strictly_increase() {
        let sim = Simulator::run_to_completion(SimConfig::tiny(7));
        let ts: Vec<_> = sim.chain().blocks().iter().map(|b| b.timestamp).collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }
}
