//! Self-implemented sampling distributions (kept in-tree to avoid a
//! `rand_distr` dependency — see DESIGN.md dependency policy).

use rand::rngs::StdRng;
use rand::Rng;

/// Standard normal via Box–Muller.
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    // u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-normal with the given parameters of the underlying normal.
/// Heavy-tailed — matches empirical bitcoin transfer-value distributions.
pub fn log_normal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Exponential with rate `lambda` (mean `1/lambda`).
pub fn exponential(rng: &mut StdRng, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "exponential rate must be positive");
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / lambda
}

/// Pareto with scale `x_min` and shape `alpha` (tail exponent).
pub fn pareto(rng: &mut StdRng, x_min: f64, alpha: f64) -> f64 {
    assert!(x_min > 0.0 && alpha > 0.0, "invalid pareto parameters");
    let u: f64 = 1.0 - rng.gen::<f64>();
    x_min / u.powf(1.0 / alpha)
}

/// Zipf-like rank sampler over `0..n`: probability of rank `k` proportional
/// to `1/(k+1)^s`. Uses an O(n) precomputed CDF via [`ZipfSampler`] for hot
/// paths; this function is the one-shot variant.
pub fn zipf(rng: &mut StdRng, n: usize, s: f64) -> usize {
    ZipfSampler::new(n, s).sample(rng)
}

/// Precomputed Zipf CDF for repeated sampling.
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler over empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in cdf.iter_mut() {
            *v /= total;
        }
        Self { cdf }
    }

    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Poisson via inversion (valid for the small means the simulator uses).
pub fn poisson(rng: &mut StdRng, mean: f64) -> u64 {
    assert!(mean >= 0.0, "poisson mean must be non-negative");
    if mean == 0.0 {
        return 0;
    }
    if mean > 30.0 {
        // Normal approximation for large means.
        let v = mean + mean.sqrt() * standard_normal(rng);
        return v.max(0.0).round() as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn normal_mean_and_var_are_plausible() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut r, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(pareto(&mut r, 3.0, 1.5) >= 3.0);
        }
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(log_normal(&mut r, 0.0, 2.0) > 0.0);
        }
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut r = rng();
        let sampler = ZipfSampler::new(100, 1.2);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[50] * 3);
    }

    #[test]
    fn zipf_stays_in_range() {
        let mut r = rng();
        let sampler = ZipfSampler::new(5, 1.0);
        for _ in 0..1000 {
            assert!(sampler.sample(&mut r) < 5);
        }
    }

    #[test]
    fn poisson_mean_is_plausible() {
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| poisson(&mut r, 3.5)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let mut r = rng();
        let n = 5_000;
        let mean = (0..n).map(|_| poisson(&mut r, 100.0)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean {mean}");
    }
}
