//! A resumable, seekable block cursor — the subscription API streaming
//! consumers use to follow a simulated chain.
//!
//! The simulator is deterministic: a given seed always produces the same
//! chain, and mining depends only on how many blocks have been stepped. A
//! [`BlockCursor`] exploits that to offer *resumable* iteration — a restarted
//! follower seeks to its checkpoint height and reads on, receiving exactly
//! the blocks it would have seen without the restart (see the determinism
//! tests below). Blocks ahead of the cursor are mined lazily on demand, so a
//! cursor is also the natural producer for a live block feed.

use crate::address::{Address, Label};
use crate::block::{Block, Chain};
use crate::sim::{SimConfig, Simulator};
use std::collections::BTreeMap;

/// Iterates the blocks of a deterministic simulation in height order,
/// mining lazily and supporting O(1) seeks over already-mined history.
pub struct BlockCursor {
    sim: Simulator,
    /// Height of the next block [`BlockCursor::next_block`] will yield.
    next: u64,
}

impl BlockCursor {
    /// Start a cursor at height 0 (genesis) of the chain `cfg` describes.
    pub fn new(cfg: SimConfig) -> Self {
        Self {
            sim: Simulator::new(cfg),
            next: 0,
        }
    }

    /// Total blocks this chain will have once fully mined (genesis + the
    /// configured block count).
    pub fn total_blocks(&self) -> u64 {
        self.sim.config().blocks + 1
    }

    /// Height the next [`BlockCursor::next_block`] call will yield
    /// (`total_blocks()` once exhausted).
    pub fn position(&self) -> u64 {
        self.next
    }

    /// Blocks mined so far (mining runs lazily, ahead of reads only when
    /// seeking backward).
    pub fn mined_blocks(&self) -> u64 {
        self.sim.chain().height()
    }

    /// Move the cursor so the next read yields `height` (clamped to the end
    /// of the chain). Seeking backward re-reads retained blocks; seeking
    /// forward mines the gap on the next read. Returns the new position.
    pub fn seek(&mut self, height: u64) -> u64 {
        self.next = height.min(self.total_blocks());
        self.next
    }

    /// The next block in height order, or `None` when the configured chain
    /// is exhausted.
    pub fn next_block(&mut self) -> Option<Block> {
        if self.next >= self.total_blocks() {
            return None;
        }
        while self.sim.chain().height() <= self.next {
            self.sim.step_block();
        }
        let block = self.sim.chain().blocks()[self.next as usize].clone();
        self.next += 1;
        Some(block)
    }

    /// The chain mined so far.
    pub fn chain(&self) -> &Chain {
        self.sim.chain()
    }

    /// Ground-truth labels for actor-controlled addresses created so far.
    pub fn labels(&self) -> BTreeMap<Address, Label> {
        self.sim.labels()
    }

    pub fn config(&self) -> &SimConfig {
        self.sim.config()
    }

    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }
}

impl Iterator for BlockCursor {
    type Item = Block;

    fn next(&mut self) -> Option<Block> {
        self.next_block()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> SimConfig {
        SimConfig {
            blocks: 25,
            ..SimConfig::tiny(seed)
        }
    }

    #[test]
    fn same_seed_same_cursor_yields_identical_blocks() {
        let a: Vec<Block> = BlockCursor::new(cfg(3)).collect();
        let b: Vec<Block> = BlockCursor::new(cfg(3)).collect();
        assert_eq!(a.len(), 26); // genesis + 25
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let a: Vec<Block> = BlockCursor::new(cfg(3)).collect();
        let b: Vec<Block> = BlockCursor::new(cfg(4)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn cursor_matches_batch_run() {
        let streamed: Vec<Block> = BlockCursor::new(cfg(7)).collect();
        let sim = Simulator::run_to_completion(cfg(7));
        assert_eq!(streamed, sim.chain().blocks());
    }

    #[test]
    fn seek_resumes_mid_chain_deterministically() {
        let full: Vec<Block> = BlockCursor::new(cfg(5)).collect();
        // A fresh cursor seeked to a checkpoint height must replay the
        // exact remainder a continuously-running cursor would have seen.
        for checkpoint in [0u64, 1, 10, 25, 26] {
            let mut resumed = BlockCursor::new(cfg(5));
            assert_eq!(resumed.seek(checkpoint), checkpoint);
            let tail: Vec<Block> = resumed.collect();
            assert_eq!(tail, full[checkpoint as usize..]);
        }
    }

    #[test]
    fn backward_seek_rereads_retained_blocks() {
        let mut c = BlockCursor::new(cfg(2));
        let first: Vec<Block> = (0..10).filter_map(|_| c.next_block()).collect();
        c.seek(0);
        let again: Vec<Block> = (0..10).filter_map(|_| c.next_block()).collect();
        assert_eq!(first, again);
        // Backward seeking never re-mines: the chain still holds 10 blocks.
        assert_eq!(c.mined_blocks(), 10);
    }

    #[test]
    fn exhausted_cursor_returns_none_and_clamps_seeks() {
        let mut c = BlockCursor::new(cfg(1));
        let n = c.by_ref().count() as u64;
        assert_eq!(n, c.total_blocks());
        assert_eq!(c.next_block(), None);
        assert_eq!(c.seek(u64::MAX), c.total_blocks());
        assert_eq!(c.next_block(), None);
        // But seeking back in range revives iteration.
        c.seek(n - 1);
        assert_eq!(c.next_block().unwrap().height, n - 1);
    }

    #[test]
    fn position_tracks_reads() {
        let mut c = BlockCursor::new(cfg(6));
        assert_eq!(c.position(), 0);
        c.next_block();
        c.next_block();
        assert_eq!(c.position(), 2);
        assert_eq!(c.next_block().unwrap().height, 2);
    }
}
