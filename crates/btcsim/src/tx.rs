//! Transactions under the UTXO model (paper §II-A).

use crate::address::Address;
use crate::amount::Amount;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A transaction id (FNV-1a of the transaction contents — the simulator does
/// not need cryptographic strength, only uniqueness and determinism).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Txid(pub u64);

impl fmt::Debug for Txid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx#{:016x}", self.0)
    }
}

impl fmt::Display for Txid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Reference to a specific output of a previous transaction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct OutPoint {
    pub txid: Txid,
    pub vout: u32,
}

/// A transaction input: the outpoint it spends, with the owning address and
/// value resolved at creation time (kept inline so consumers never need the
/// full UTXO set to interpret a transaction).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TxIn {
    pub prevout: OutPoint,
    pub address: Address,
    pub value: Amount,
}

/// A transaction output: recipient and value.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TxOut {
    pub address: Address,
    pub value: Amount,
}

/// A bitcoin transaction. Coinbase transactions have no inputs.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Transaction {
    pub txid: Txid,
    pub inputs: Vec<TxIn>,
    pub outputs: Vec<TxOut>,
    /// Unix timestamp inherited from the containing block.
    pub timestamp: u64,
}

impl Transaction {
    /// Build a transaction, computing its txid from contents + a nonce that
    /// the caller guarantees unique (e.g. a global transaction counter).
    pub fn new(inputs: Vec<TxIn>, outputs: Vec<TxOut>, timestamp: u64, nonce: u64) -> Self {
        assert!(!outputs.is_empty(), "transaction must have outputs");
        let txid = Txid(txid_hash(&inputs, &outputs, timestamp, nonce));
        Self {
            txid,
            inputs,
            outputs,
            timestamp,
        }
    }

    /// True for block-reward transactions.
    pub fn is_coinbase(&self) -> bool {
        self.inputs.is_empty()
    }

    pub fn input_value(&self) -> Amount {
        self.inputs.iter().map(|i| i.value).sum()
    }

    pub fn output_value(&self) -> Amount {
        self.outputs.iter().map(|o| o.value).sum()
    }

    /// Miner fee (input − output); zero for coinbase.
    pub fn fee(&self) -> Amount {
        if self.is_coinbase() {
            Amount::ZERO
        } else {
            self.input_value().saturating_sub(self.output_value())
        }
    }

    /// Every address appearing on the input side (with multiplicity).
    pub fn input_addresses(&self) -> impl Iterator<Item = Address> + '_ {
        self.inputs.iter().map(|i| i.address)
    }

    /// Every address appearing on the output side (with multiplicity).
    pub fn output_addresses(&self) -> impl Iterator<Item = Address> + '_ {
        self.outputs.iter().map(|o| o.address)
    }

    /// Whether `addr` participates in this transaction on either side.
    pub fn involves(&self, addr: Address) -> bool {
        self.input_addresses()
            .chain(self.output_addresses())
            .any(|a| a == addr)
    }
}

fn txid_hash(inputs: &[TxIn], outputs: &[TxOut], timestamp: u64, nonce: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(timestamp);
    h.write_u64(nonce);
    for i in inputs {
        h.write_u64(i.prevout.txid.0);
        h.write_u64(i.prevout.vout as u64);
        h.write_u64(i.address.0);
        h.write_u64(i.value.sats());
    }
    for o in outputs {
        h.write_u64(o.address.0);
        h.write_u64(o.value.sats());
    }
    h.finish()
}

/// FNV-1a 64-bit, enough for simulator txids.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out(addr: u64, sats: u64) -> TxOut {
        TxOut {
            address: Address(addr),
            value: Amount::from_sats(sats),
        }
    }

    fn input(txid: u64, vout: u32, addr: u64, sats: u64) -> TxIn {
        TxIn {
            prevout: OutPoint {
                txid: Txid(txid),
                vout,
            },
            address: Address(addr),
            value: Amount::from_sats(sats),
        }
    }

    #[test]
    fn coinbase_detection() {
        let cb = Transaction::new(vec![], vec![out(1, 50)], 0, 0);
        assert!(cb.is_coinbase());
        assert_eq!(cb.fee(), Amount::ZERO);
        let tx = Transaction::new(vec![input(9, 0, 2, 60)], vec![out(1, 50)], 0, 1);
        assert!(!tx.is_coinbase());
    }

    #[test]
    fn fee_is_input_minus_output() {
        let tx = Transaction::new(
            vec![input(9, 0, 2, 100)],
            vec![out(1, 60), out(3, 30)],
            0,
            1,
        );
        assert_eq!(tx.fee(), Amount::from_sats(10));
        assert_eq!(tx.input_value(), Amount::from_sats(100));
        assert_eq!(tx.output_value(), Amount::from_sats(90));
    }

    #[test]
    fn txids_differ_by_nonce_and_content() {
        let a = Transaction::new(vec![], vec![out(1, 50)], 0, 0);
        let b = Transaction::new(vec![], vec![out(1, 50)], 0, 1);
        let c = Transaction::new(vec![], vec![out(1, 51)], 0, 0);
        assert_ne!(a.txid, b.txid);
        assert_ne!(a.txid, c.txid);
    }

    #[test]
    fn txid_is_deterministic() {
        let a = Transaction::new(vec![], vec![out(7, 123)], 55, 9);
        let b = Transaction::new(vec![], vec![out(7, 123)], 55, 9);
        assert_eq!(a.txid, b.txid);
    }

    #[test]
    fn involves_checks_both_sides() {
        let tx = Transaction::new(vec![input(9, 0, 2, 100)], vec![out(1, 90)], 0, 1);
        assert!(tx.involves(Address(2)));
        assert!(tx.involves(Address(1)));
        assert!(!tx.involves(Address(3)));
    }

    #[test]
    #[should_panic(expected = "outputs")]
    fn empty_outputs_panics() {
        let _ = Transaction::new(vec![], vec![], 0, 0);
    }
}
