//! The unspent-transaction-output set and transaction validation.

use crate::address::Address;
use crate::amount::Amount;
use crate::tx::{OutPoint, Transaction};
use std::collections::HashMap;

/// Validation failures when applying a transaction to the UTXO set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UtxoError {
    /// An input references an outpoint that is not unspent.
    MissingInput(OutPoint),
    /// An input's claimed owner/value disagrees with the UTXO set.
    InputMismatch(OutPoint),
    /// Output value exceeds input value on a non-coinbase transaction.
    ValueCreated { input: Amount, output: Amount },
    /// Duplicate outpoint spent twice within one transaction.
    DoubleSpend(OutPoint),
}

impl std::fmt::Display for UtxoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UtxoError::MissingInput(op) => write!(f, "missing input {op:?}"),
            UtxoError::InputMismatch(op) => write!(f, "input mismatch at {op:?}"),
            UtxoError::ValueCreated { input, output } => {
                write!(f, "outputs {output:?} exceed inputs {input:?}")
            }
            UtxoError::DoubleSpend(op) => write!(f, "double spend of {op:?}"),
        }
    }
}

impl std::error::Error for UtxoError {}

/// One unspent output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UtxoEntry {
    pub address: Address,
    pub value: Amount,
}

/// The set of unspent transaction outputs.
#[derive(Clone, Debug, Default)]
pub struct UtxoSet {
    entries: HashMap<OutPoint, UtxoEntry>,
}

impl UtxoSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn get(&self, op: &OutPoint) -> Option<&UtxoEntry> {
        self.entries.get(op)
    }

    pub fn contains(&self, op: &OutPoint) -> bool {
        self.entries.contains_key(op)
    }

    /// Total value of all unspent outputs.
    pub fn total_value(&self) -> Amount {
        self.entries.values().map(|e| e.value).sum()
    }

    /// Validate a transaction against the current set without mutating it.
    pub fn validate(&self, tx: &Transaction) -> Result<(), UtxoError> {
        let mut seen = std::collections::HashSet::new();
        for input in &tx.inputs {
            if !seen.insert(input.prevout) {
                return Err(UtxoError::DoubleSpend(input.prevout));
            }
            match self.entries.get(&input.prevout) {
                None => return Err(UtxoError::MissingInput(input.prevout)),
                Some(e) if e.address != input.address || e.value != input.value => {
                    return Err(UtxoError::InputMismatch(input.prevout))
                }
                Some(_) => {}
            }
        }
        if !tx.is_coinbase() && tx.output_value() > tx.input_value() {
            return Err(UtxoError::ValueCreated {
                input: tx.input_value(),
                output: tx.output_value(),
            });
        }
        Ok(())
    }

    /// Validate and apply: spend the inputs, insert the outputs.
    pub fn apply(&mut self, tx: &Transaction) -> Result<(), UtxoError> {
        self.validate(tx)?;
        for input in &tx.inputs {
            self.entries.remove(&input.prevout);
        }
        for (vout, output) in tx.outputs.iter().enumerate() {
            if output.value.is_zero() {
                continue; // unspendable dust marker; keep the set clean
            }
            self.entries.insert(
                OutPoint {
                    txid: tx.txid,
                    vout: vout as u32,
                },
                UtxoEntry {
                    address: output.address,
                    value: output.value,
                },
            );
        }
        Ok(())
    }

    /// Iterate all entries (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (&OutPoint, &UtxoEntry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::{TxIn, TxOut};

    fn coinbase(addr: u64, sats: u64, nonce: u64) -> Transaction {
        Transaction::new(
            vec![],
            vec![TxOut {
                address: Address(addr),
                value: Amount::from_sats(sats),
            }],
            0,
            nonce,
        )
    }

    fn spend(prev: &Transaction, vout: u32, to: u64, sats: u64, nonce: u64) -> Transaction {
        let entry = prev.outputs[vout as usize];
        Transaction::new(
            vec![TxIn {
                prevout: OutPoint {
                    txid: prev.txid,
                    vout,
                },
                address: entry.address,
                value: entry.value,
            }],
            vec![TxOut {
                address: Address(to),
                value: Amount::from_sats(sats),
            }],
            1,
            nonce,
        )
    }

    #[test]
    fn coinbase_creates_utxo() {
        let mut set = UtxoSet::new();
        let cb = coinbase(1, 50, 0);
        set.apply(&cb).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.total_value(), Amount::from_sats(50));
    }

    #[test]
    fn spend_moves_value() {
        let mut set = UtxoSet::new();
        let cb = coinbase(1, 50, 0);
        set.apply(&cb).unwrap();
        let tx = spend(&cb, 0, 2, 45, 1); // 5 sats fee
        set.apply(&tx).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.total_value(), Amount::from_sats(45));
        let op = OutPoint {
            txid: tx.txid,
            vout: 0,
        };
        assert_eq!(set.get(&op).unwrap().address, Address(2));
    }

    #[test]
    fn double_spend_rejected() {
        let mut set = UtxoSet::new();
        let cb = coinbase(1, 50, 0);
        set.apply(&cb).unwrap();
        let tx1 = spend(&cb, 0, 2, 45, 1);
        let tx2 = spend(&cb, 0, 3, 45, 2);
        set.apply(&tx1).unwrap();
        assert!(matches!(set.apply(&tx2), Err(UtxoError::MissingInput(_))));
    }

    #[test]
    fn intra_tx_double_spend_rejected() {
        let mut set = UtxoSet::new();
        let cb = coinbase(1, 50, 0);
        set.apply(&cb).unwrap();
        let op = OutPoint {
            txid: cb.txid,
            vout: 0,
        };
        let inp = TxIn {
            prevout: op,
            address: Address(1),
            value: Amount::from_sats(50),
        };
        let tx = Transaction::new(
            vec![inp, inp],
            vec![TxOut {
                address: Address(2),
                value: Amount::from_sats(90),
            }],
            1,
            7,
        );
        assert_eq!(set.apply(&tx), Err(UtxoError::DoubleSpend(op)));
    }

    #[test]
    fn value_creation_rejected() {
        let mut set = UtxoSet::new();
        let cb = coinbase(1, 50, 0);
        set.apply(&cb).unwrap();
        let tx = spend(&cb, 0, 2, 60, 1); // 60 > 50
        assert!(matches!(
            set.apply(&tx),
            Err(UtxoError::ValueCreated { .. })
        ));
        // Set unchanged on failure.
        assert_eq!(set.total_value(), Amount::from_sats(50));
    }

    #[test]
    fn input_owner_mismatch_rejected() {
        let mut set = UtxoSet::new();
        let cb = coinbase(1, 50, 0);
        set.apply(&cb).unwrap();
        let tx = Transaction::new(
            vec![TxIn {
                prevout: OutPoint {
                    txid: cb.txid,
                    vout: 0,
                },
                address: Address(99), // wrong owner claim
                value: Amount::from_sats(50),
            }],
            vec![TxOut {
                address: Address(2),
                value: Amount::from_sats(40),
            }],
            1,
            3,
        );
        assert!(matches!(set.apply(&tx), Err(UtxoError::InputMismatch(_))));
    }

    #[test]
    fn zero_value_outputs_not_tracked() {
        let mut set = UtxoSet::new();
        let tx = Transaction::new(
            vec![],
            vec![
                TxOut {
                    address: Address(1),
                    value: Amount::ZERO,
                },
                TxOut {
                    address: Address(2),
                    value: Amount::from_sats(10),
                },
            ],
            0,
            0,
        );
        set.apply(&tx).unwrap();
        assert_eq!(set.len(), 1);
    }
}
