//! Behavior-driven actors: each models one of the paper's four address
//! behavior categories (Table I) plus unlabeled retail background traffic.
//!
//! Actors step once per block. Cross-actor flows (a miner depositing to an
//! exchange, a gambler hitting a mixer) go through the shared [`Directory`]
//! (published receiving addresses) and [`Mailbox`] (queued requests served by
//! the owning actor on its next step), so actors never borrow each other.

use crate::address::{Address, Label};
use crate::amount::Amount;
use crate::tx::Transaction;
use crate::wallet::AddressAlloc;
use rand::rngs::StdRng;
use std::collections::BTreeMap;

pub mod exchange;
pub mod gambling;
pub mod mining;
pub mod retail;
pub mod service;

pub use exchange::ExchangeActor;
pub use gambling::GamblingActor;
pub use mining::MiningPoolActor;
pub use retail::RetailActor;
pub use service::ServiceActor;

/// Queued cross-actor requests, served by the owning actor next block.
#[derive(Debug, Default)]
pub struct Mailbox {
    /// (exchange id, payout destination, amount): withdrawal to process.
    pub withdrawals: Vec<(usize, Address, Amount)>,
    /// (mixer id, payout destination, amount): mixing job to execute.
    pub mix_jobs: Vec<(usize, Address, Amount)>,
}

/// Published receiving addresses other actors can pay into.
///
/// Refreshed by the owning actors at the start of their step; readers see
/// addresses published this block (earlier-stepping actors) or the previous
/// block — both are fine, addresses stay valid.
#[derive(Debug, Default)]
pub struct Directory {
    /// Fresh single-use deposit addresses per exchange.
    pub exchange_deposits: Vec<Vec<Address>>,
    /// Gambling-house bet addresses per house.
    pub house_addresses: Vec<Address>,
    /// Mixer intake addresses per mixer.
    pub mixer_intakes: Vec<Address>,
}

impl Directory {
    /// Pop a deposit address of a random exchange, if any is available.
    pub fn take_exchange_deposit(&mut self, rng: &mut StdRng) -> Option<(usize, Address)> {
        use rand::Rng;
        let available: Vec<usize> = self
            .exchange_deposits
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(i, _)| i)
            .collect();
        if available.is_empty() {
            return None;
        }
        let ex = available[rng.gen_range(0..available.len())];
        self.exchange_deposits[ex].pop().map(|a| (ex, a))
    }
}

/// Shared mutable state threaded through every actor step.
#[derive(Debug, Default)]
pub struct Shared {
    pub alloc: AddressAlloc,
    pub mail: Mailbox,
    pub dir: Directory,
}

/// Per-block step context: time, entropy, and the transaction sink.
pub struct StepCtx<'a> {
    pub rng: &'a mut StdRng,
    pub timestamp: u64,
    pub height: u64,
    nonce: &'a mut u64,
    out: &'a mut Vec<Transaction>,
}

impl<'a> StepCtx<'a> {
    pub fn new(
        rng: &'a mut StdRng,
        timestamp: u64,
        height: u64,
        nonce: &'a mut u64,
        out: &'a mut Vec<Transaction>,
    ) -> Self {
        Self {
            rng,
            timestamp,
            height,
            nonce,
            out,
        }
    }

    /// Globally unique transaction nonce.
    pub fn next_nonce(&mut self) -> u64 {
        let n = *self.nonce;
        *self.nonce += 1;
        n
    }

    /// Submit a transaction for inclusion in the current block.
    pub fn submit(&mut self, tx: Transaction) {
        self.out.push(tx);
    }

    /// Number of transactions already submitted this block.
    pub fn submitted(&self) -> usize {
        self.out.len()
    }
}

/// A block-stepped behavior agent.
pub trait Actor {
    /// Human-readable kind, for diagnostics.
    fn kind(&self) -> &'static str;

    /// Emit this block's transactions.
    fn step(&mut self, ctx: &mut StepCtx<'_>, shared: &mut Shared);

    /// Observe a confirmed transaction (update wallet UTXO views).
    fn on_confirmed(&mut self, tx: &Transaction);

    /// Contribute ground-truth labels for the addresses this actor controls.
    fn collect_labels(&self, out: &mut BTreeMap<Address, Label>);
}

/// Standard flat fee the simulator's wallets pay.
pub const DEFAULT_FEE: Amount = Amount::from_sats(2_000);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ctx_nonces_are_unique() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut nonce = 0u64;
        let mut out = Vec::new();
        let mut ctx = StepCtx::new(&mut rng, 0, 0, &mut nonce, &mut out);
        let a = ctx.next_nonce();
        let b = ctx.next_nonce();
        assert_ne!(a, b);
    }

    #[test]
    fn directory_take_round_trips() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut dir = Directory {
            exchange_deposits: vec![vec![], vec![Address(7)]],
            ..Default::default()
        };
        let (ex, addr) = dir.take_exchange_deposit(&mut rng).unwrap();
        assert_eq!((ex, addr), (1, Address(7)));
        assert!(dir.take_exchange_deposit(&mut rng).is_none());
    }
}
