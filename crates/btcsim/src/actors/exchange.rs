//! Exchange behavior: hot/cold wallets, single-use deposit addresses,
//! periodic sweeps (many-to-one consolidation), batched withdrawals
//! (one-to-many payouts), and hot/cold rebalancing.

use super::{Actor, Shared, StepCtx, DEFAULT_FEE};
use crate::address::{Address, Label};
use crate::amount::Amount;
use crate::tx::{Transaction, TxOut};
use crate::wallet::{ChangePolicy, Wallet};
use rand::Rng;
use std::collections::BTreeMap;

/// Tunables for one exchange.
#[derive(Clone, Debug)]
pub struct ExchangeConfig {
    /// This exchange's index in `Directory::exchange_deposits` /
    /// `Mailbox::withdrawals`.
    pub id: usize,
    /// Deposit addresses kept available in the directory.
    pub deposit_pool_target: usize,
    /// Sweep deposit funds into the hot wallet every this many blocks.
    pub sweep_interval: u64,
    /// Max deposit UTXOs consolidated per sweep transaction.
    pub sweep_batch: usize,
    /// Move funds to cold storage when the hot wallet exceeds this.
    pub hot_ceiling: Amount,
    /// Refill hot from cold when the hot wallet drops below this.
    pub hot_floor: Amount,
    /// Max withdrawal payouts batched into one transaction.
    pub withdrawal_batch: usize,
}

impl Default for ExchangeConfig {
    fn default() -> Self {
        Self {
            id: 0,
            deposit_pool_target: 24,
            sweep_interval: 6,
            sweep_batch: 32,
            hot_ceiling: Amount::from_btc(500.0),
            hot_floor: Amount::from_btc(10.0),
            withdrawal_batch: 16,
        }
    }
}

/// An exchange: deposit wallet (single-use intake addresses), hot wallet
/// (operational), cold wallet (reserve).
pub struct ExchangeActor {
    cfg: ExchangeConfig,
    deposit_wallet: Wallet,
    hot: Wallet,
    cold: Wallet,
    hot_main: Address,
    cold_main: Address,
    /// Deposit addresses ever issued (all labeled Exchange).
    issued: Vec<Address>,
}

impl ExchangeActor {
    pub fn new(cfg: ExchangeConfig, shared: &mut Shared) -> Self {
        let mut hot = Wallet::new(ChangePolicy::FreshAddress);
        let mut cold = Wallet::new(ChangePolicy::ReuseInput);
        let hot_main = hot.new_address(&mut shared.alloc);
        let cold_main = cold.new_address(&mut shared.alloc);
        if shared.dir.exchange_deposits.len() <= cfg.id {
            shared.dir.exchange_deposits.resize(cfg.id + 1, Vec::new());
        }
        Self {
            cfg,
            deposit_wallet: Wallet::new(ChangePolicy::FreshAddress),
            hot,
            cold,
            hot_main,
            cold_main,
            issued: Vec::new(),
        }
    }

    pub fn id(&self) -> usize {
        self.cfg.id
    }

    /// Total funds under management.
    pub fn assets(&self) -> Amount {
        self.deposit_wallet.balance() + self.hot.balance() + self.cold.balance()
    }

    fn refill_deposit_pool(&mut self, shared: &mut Shared) {
        let pool = &mut shared.dir.exchange_deposits[self.cfg.id];
        while pool.len() < self.cfg.deposit_pool_target {
            let a = self.deposit_wallet.new_address(&mut shared.alloc);
            self.issued.push(a);
            pool.push(a);
        }
    }

    fn sweep_deposits(&mut self, ctx: &mut StepCtx<'_>) {
        // Consolidate confirmed deposits into the hot wallet: the classic
        // many-inputs-one-output exchange pattern.
        while self.deposit_wallet.num_utxos() >= 2 {
            let nonce = ctx.next_nonce();
            let Some(tx) = self.deposit_wallet.consolidate(
                self.hot_main,
                self.cfg.sweep_batch,
                DEFAULT_FEE,
                ctx.timestamp,
                nonce,
            ) else {
                break;
            };
            ctx.submit(tx);
        }
    }

    fn process_withdrawals(&mut self, ctx: &mut StepCtx<'_>, shared: &mut Shared) {
        let mine: Vec<(Address, Amount)> = {
            let (mine, rest): (Vec<_>, Vec<_>) = std::mem::take(&mut shared.mail.withdrawals)
                .into_iter()
                .partition(|&(id, _, _)| id == self.cfg.id);
            shared.mail.withdrawals = rest;
            mine.into_iter().map(|(_, a, v)| (a, v)).collect()
        };
        for batch in mine.chunks(self.cfg.withdrawal_batch) {
            let outs: Vec<TxOut> = batch
                .iter()
                .map(|&(address, value)| TxOut { address, value })
                .collect();
            let nonce = ctx.next_nonce();
            match self.hot.create_payment(
                outs,
                DEFAULT_FEE,
                &mut shared.alloc,
                ctx.timestamp,
                nonce,
            ) {
                Some(tx) => ctx.submit(tx),
                None => {
                    // Hot balance short (e.g. change still unconfirmed):
                    // re-queue the batch for the next block.
                    shared
                        .mail
                        .withdrawals
                        .extend(batch.iter().map(|&(a, v)| (self.cfg.id, a, v)));
                }
            }
        }
    }

    fn rebalance(&mut self, ctx: &mut StepCtx<'_>, shared: &mut Shared) {
        if self.hot.balance() > self.cfg.hot_ceiling {
            let excess =
                self.hot.balance() - self.cfg.hot_floor.mul_f64(4.0).min(self.hot.balance());
            if excess > DEFAULT_FEE {
                let nonce = ctx.next_nonce();
                if let Some(tx) = self.hot.create_payment(
                    vec![TxOut {
                        address: self.cold_main,
                        value: excess - DEFAULT_FEE,
                    }],
                    DEFAULT_FEE,
                    &mut shared.alloc,
                    ctx.timestamp,
                    nonce,
                ) {
                    ctx.submit(tx);
                }
            }
        } else if self.hot.balance() < self.cfg.hot_floor
            && self.cold.balance() > self.cfg.hot_floor.mul_f64(2.0)
        {
            let refill = self.cold.balance().div_n(4);
            let nonce = ctx.next_nonce();
            if let Some(tx) = self.cold.create_payment(
                vec![TxOut {
                    address: self.hot_main,
                    value: refill,
                }],
                DEFAULT_FEE,
                &mut shared.alloc,
                ctx.timestamp,
                nonce,
            ) {
                ctx.submit(tx);
            }
        }
    }
}

impl Actor for ExchangeActor {
    fn kind(&self) -> &'static str {
        "exchange"
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>, shared: &mut Shared) {
        self.refill_deposit_pool(shared);
        self.process_withdrawals(ctx, shared);
        if ctx.height % self.cfg.sweep_interval == self.cfg.id as u64 % self.cfg.sweep_interval {
            self.sweep_deposits(ctx);
        }
        // Occasional rebalance check with jitter so exchanges don't sync up.
        if ctx.rng.gen_bool(0.2) {
            self.rebalance(ctx, shared);
        }
    }

    fn on_confirmed(&mut self, tx: &Transaction) {
        self.deposit_wallet.observe(tx);
        self.hot.observe(tx);
        self.cold.observe(tx);
    }

    fn collect_labels(&self, out: &mut BTreeMap<Address, Label>) {
        for w in [&self.deposit_wallet, &self.hot, &self.cold] {
            for a in w.addresses() {
                out.insert(a, Label::Exchange);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_step(actor: &mut ExchangeActor, shared: &mut Shared, height: u64) -> Vec<Transaction> {
        let mut rng = StdRng::seed_from_u64(height);
        let mut nonce = height * 1000;
        let mut out = Vec::new();
        let mut ctx = StepCtx::new(&mut rng, height * 600, height, &mut nonce, &mut out);
        actor.step(&mut ctx, shared);
        out
    }

    #[test]
    fn deposit_pool_is_refilled() {
        let mut shared = Shared::default();
        let mut ex = ExchangeActor::new(ExchangeConfig::default(), &mut shared);
        run_step(&mut ex, &mut shared, 0);
        assert_eq!(shared.dir.exchange_deposits[0].len(), 24);
    }

    #[test]
    fn deposits_get_swept_to_hot() {
        let mut shared = Shared::default();
        let mut ex = ExchangeActor::new(ExchangeConfig::default(), &mut shared);
        run_step(&mut ex, &mut shared, 0);
        // Simulate three user deposits into published addresses.
        for i in 0..3 {
            let dep = shared.dir.exchange_deposits[0].pop().unwrap();
            let tx = Transaction::new(
                vec![],
                vec![TxOut {
                    address: dep,
                    value: Amount::from_btc(1.0),
                }],
                0,
                900 + i,
            );
            ex.on_confirmed(&tx);
        }
        assert_eq!(ex.deposit_wallet.num_utxos(), 3);
        // Sweep happens on the block where height % interval == id.
        let txs = run_step(&mut ex, &mut shared, 6);
        assert_eq!(txs.len(), 1, "one consolidation tx");
        assert!(txs[0].inputs.len() == 3);
        assert_eq!(txs[0].outputs[0].address, ex.hot_main);
        for tx in &txs {
            ex.on_confirmed(tx);
        }
        assert!(ex.hot.balance() > Amount::from_btc(2.9));
    }

    #[test]
    fn withdrawals_are_batched() {
        let mut shared = Shared::default();
        let mut ex = ExchangeActor::new(ExchangeConfig::default(), &mut shared);
        // Fund hot wallet directly.
        let fund = Transaction::new(
            vec![],
            vec![TxOut {
                address: ex.hot_main,
                value: Amount::from_btc(100.0),
            }],
            0,
            1,
        );
        ex.on_confirmed(&fund);
        for i in 0..20u64 {
            shared
                .mail
                .withdrawals
                .push((0, Address(100_000 + i), Amount::from_btc(0.1)));
        }
        let txs = run_step(&mut ex, &mut shared, 1);
        // 20 withdrawals, batch size 16: the first batch pays out; the second
        // cannot spend the unconfirmed change and is re-queued.
        let payouts: Vec<_> = txs.iter().filter(|t| !t.inputs.is_empty()).collect();
        assert_eq!(payouts.len(), 1);
        assert!(payouts[0].outputs.len() >= 16);
        assert_eq!(shared.mail.withdrawals.len(), 4);
        // After confirmation the re-queued batch is served.
        for tx in &txs {
            ex.on_confirmed(tx);
        }
        let txs2 = run_step(&mut ex, &mut shared, 2);
        let payouts2: Vec<_> = txs2.iter().filter(|t| !t.inputs.is_empty()).collect();
        assert_eq!(payouts2.len(), 1);
        assert_eq!(payouts2[0].outputs.len(), 5); // 4 payouts + change
        assert!(shared.mail.withdrawals.is_empty());
    }

    #[test]
    fn labels_cover_all_owned_addresses() {
        let mut shared = Shared::default();
        let mut ex = ExchangeActor::new(ExchangeConfig::default(), &mut shared);
        run_step(&mut ex, &mut shared, 0);
        let mut labels = BTreeMap::new();
        ex.collect_labels(&mut labels);
        assert!(labels.len() >= 26); // 24 deposits + hot + cold
        assert!(labels.values().all(|&l| l == Label::Exchange));
    }

    #[test]
    fn foreign_withdrawals_left_in_mailbox() {
        let mut shared = Shared::default();
        let mut ex = ExchangeActor::new(ExchangeConfig::default(), &mut shared);
        shared
            .mail
            .withdrawals
            .push((3, Address(1), Amount::from_btc(1.0)));
        run_step(&mut ex, &mut shared, 1);
        assert_eq!(shared.mail.withdrawals.len(), 1);
    }
}
