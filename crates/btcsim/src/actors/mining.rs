//! Mining-pool behavior: collect block rewards, fan payouts out to a large,
//! stable population of miner addresses — the pattern that motivates the
//! paper's multi-transaction address compression (thousands of miner
//! addresses co-occurring across payout transactions).

use super::{Actor, Shared, StepCtx, DEFAULT_FEE};
use crate::address::{Address, Label};
use crate::amount::Amount;
use crate::tx::{Transaction, TxOut};
use crate::wallet::{ChangePolicy, Wallet};
use rand::Rng;
use std::collections::BTreeMap;

/// Tunables for one mining pool.
#[derive(Clone, Debug)]
pub struct MiningConfig {
    /// Number of miner addresses paid by this pool.
    pub num_miners: usize,
    /// Blocks between payout rounds.
    pub payout_interval: u64,
    /// Fraction of miners paid each round (the rest are below the payout
    /// threshold that round).
    pub payout_fraction: f64,
    /// Miners forward earnings to an exchange with this per-round chance.
    pub miner_deposit_prob: f64,
}

impl Default for MiningConfig {
    fn default() -> Self {
        Self {
            num_miners: 120,
            payout_interval: 12,
            payout_fraction: 0.7,
            miner_deposit_prob: 0.05,
        }
    }
}

/// A mining pool plus the miners it pays.
pub struct MiningPoolActor {
    cfg: MiningConfig,
    pool: Wallet,
    pool_reward_addr: Address,
    miners: Wallet,
    miner_addrs: Vec<Address>,
}

impl MiningPoolActor {
    pub fn new(cfg: MiningConfig, shared: &mut Shared) -> Self {
        let mut pool = Wallet::new(ChangePolicy::ReuseInput);
        let pool_reward_addr = pool.new_address(&mut shared.alloc);
        let mut miners = Wallet::new(ChangePolicy::ReuseInput);
        let miner_addrs: Vec<Address> = (0..cfg.num_miners)
            .map(|_| miners.new_address(&mut shared.alloc))
            .collect();
        Self {
            cfg,
            pool,
            pool_reward_addr,
            miners,
            miner_addrs,
        }
    }

    /// Address the simulator pays the coinbase to when this pool wins a block.
    pub fn reward_address(&self) -> Address {
        self.pool_reward_addr
    }

    pub fn pool_balance(&self) -> Amount {
        self.pool.balance()
    }

    fn payout_round(&mut self, ctx: &mut StepCtx<'_>, shared: &mut Shared) {
        let balance = self.pool.balance();
        if balance < Amount::from_btc(1.0) {
            return;
        }
        // Pick the miners paid this round.
        let paid: Vec<Address> = self
            .miner_addrs
            .iter()
            .copied()
            .filter(|_| ctx.rng.gen_bool(self.cfg.payout_fraction))
            .collect();
        if paid.is_empty() {
            return;
        }
        // Distribute ~80% of the pool balance, proportional with jitter
        // (hashrate differences between miners).
        let distributable = balance.mul_f64(0.8);
        let base = distributable.div_n(paid.len() as u64);
        let outs: Vec<TxOut> = paid
            .iter()
            .map(|&address| TxOut {
                address,
                value: base.mul_f64(0.5 + ctx.rng.gen::<f64>()),
            })
            .filter(|o| !o.value.is_zero())
            .collect();
        if outs.is_empty() {
            return;
        }
        let total: Amount = outs.iter().map(|o| o.value).sum();
        if total + DEFAULT_FEE > balance {
            return;
        }
        let nonce = ctx.next_nonce();
        if let Some(tx) =
            self.pool
                .create_payment(outs, DEFAULT_FEE, &mut shared.alloc, ctx.timestamp, nonce)
        {
            ctx.submit(tx);
        }
    }

    fn miner_deposits(&mut self, ctx: &mut StepCtx<'_>, shared: &mut Shared) {
        // Some miners cash out to an exchange deposit address.
        if self.miners.balance() < Amount::from_btc(0.5) {
            return;
        }
        let rounds = (self.cfg.num_miners as f64 * self.cfg.miner_deposit_prob).ceil() as usize;
        for _ in 0..rounds {
            if !ctx.rng.gen_bool(0.8) {
                continue;
            }
            let Some((_, dep)) = shared.dir.take_exchange_deposit(ctx.rng) else {
                break;
            };
            let amount = self.miners.balance().div_n(20).max(Amount::from_btc(0.05));
            let amount = amount.min(self.miners.balance().saturating_sub(DEFAULT_FEE));
            if amount.is_zero() {
                break;
            }
            let nonce = ctx.next_nonce();
            if let Some(tx) = self.miners.create_payment(
                vec![TxOut {
                    address: dep,
                    value: amount,
                }],
                DEFAULT_FEE,
                &mut shared.alloc,
                ctx.timestamp,
                nonce,
            ) {
                ctx.submit(tx);
            }
        }
    }
}

impl Actor for MiningPoolActor {
    fn kind(&self) -> &'static str {
        "mining-pool"
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>, shared: &mut Shared) {
        if ctx.height > 0 && ctx.height.is_multiple_of(self.cfg.payout_interval) {
            self.payout_round(ctx, shared);
        }
        self.miner_deposits(ctx, shared);
    }

    fn on_confirmed(&mut self, tx: &Transaction) {
        self.pool.observe(tx);
        self.miners.observe(tx);
    }

    fn collect_labels(&self, out: &mut BTreeMap<Address, Label>) {
        for a in self.pool.addresses().chain(self.miners.addresses()) {
            out.insert(a, Label::Mining);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn step_at(actor: &mut MiningPoolActor, shared: &mut Shared, height: u64) -> Vec<Transaction> {
        let mut rng = StdRng::seed_from_u64(height + 5);
        let mut nonce = height * 1000;
        let mut out = Vec::new();
        let mut ctx = StepCtx::new(&mut rng, height * 600, height, &mut nonce, &mut out);
        actor.step(&mut ctx, shared);
        out
    }

    fn fund_pool(actor: &mut MiningPoolActor, btc: f64, nonce: u64) {
        let tx = Transaction::new(
            vec![],
            vec![TxOut {
                address: actor.reward_address(),
                value: Amount::from_btc(btc),
            }],
            0,
            nonce,
        );
        actor.on_confirmed(&tx);
    }

    #[test]
    fn payout_fans_out_to_many_miners() {
        let mut shared = Shared::default();
        let mut pool = MiningPoolActor::new(MiningConfig::default(), &mut shared);
        fund_pool(&mut pool, 50.0, 1);
        let txs = step_at(&mut pool, &mut shared, 12);
        assert_eq!(txs.len(), 1);
        // ~70% of 120 miners paid in a single fan-out transaction.
        assert!(
            txs[0].outputs.len() > 40,
            "only {} outputs",
            txs[0].outputs.len()
        );
    }

    #[test]
    fn no_payout_off_schedule() {
        let mut shared = Shared::default();
        let mut pool = MiningPoolActor::new(MiningConfig::default(), &mut shared);
        fund_pool(&mut pool, 50.0, 1);
        let txs = step_at(&mut pool, &mut shared, 13);
        assert!(
            txs.iter().all(|t| t.outputs.len() < 10),
            "no fan-out expected"
        );
    }

    #[test]
    fn no_payout_when_poor() {
        let mut shared = Shared::default();
        let mut pool = MiningPoolActor::new(MiningConfig::default(), &mut shared);
        fund_pool(&mut pool, 0.1, 1);
        assert!(step_at(&mut pool, &mut shared, 12).is_empty());
    }

    #[test]
    fn miners_deposit_to_exchanges_when_available() {
        let mut shared = Shared::default();
        shared.dir.exchange_deposits = vec![(0..50).map(|i| Address(10_000 + i)).collect()];
        let mut pool = MiningPoolActor::new(MiningConfig::default(), &mut shared);
        fund_pool(&mut pool, 50.0, 1);
        // Run a payout so miners have funds, confirm it, then another step.
        let txs = step_at(&mut pool, &mut shared, 12);
        for tx in &txs {
            pool.on_confirmed(tx);
        }
        let txs2 = step_at(&mut pool, &mut shared, 13);
        let deposits: Vec<_> = txs2
            .iter()
            .filter(|t| {
                t.outputs
                    .iter()
                    .any(|o| o.address.0 >= 10_000 && o.address.0 < 10_050)
            })
            .collect();
        assert!(!deposits.is_empty(), "expected at least one miner deposit");
    }

    #[test]
    fn labels_are_mining() {
        let mut shared = Shared::default();
        let pool = MiningPoolActor::new(MiningConfig::default(), &mut shared);
        let mut labels = BTreeMap::new();
        pool.collect_labels(&mut labels);
        assert_eq!(labels.len(), 121); // pool reward + 120 miners
        assert!(labels.values().all(|&l| l == Label::Mining));
    }
}
