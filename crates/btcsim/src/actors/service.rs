//! Service behavior (paper's fourth category): coin mixers / underground
//! banks. Intake addresses receive client funds; the mixer then runs peel
//! chains — a sequence of transactions each paying a small slice to a
//! destination and passing the remainder to a fresh internal address —
//! producing long chains of single-use Service-labeled addresses.

use super::{Actor, Shared, StepCtx, DEFAULT_FEE};
use crate::address::{Address, Label};
use crate::amount::Amount;
use crate::tx::{Transaction, TxOut};
use crate::wallet::{ChangePolicy, Wallet};
use rand::Rng;
use std::collections::BTreeMap;

/// Tunables for one mixing service.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// This mixer's index in `Directory::mixer_intakes` / `Mailbox::mix_jobs`.
    pub id: usize,
    /// Number of peel hops per mixing job.
    pub peel_hops: usize,
    /// Fee the service keeps, as a fraction of the mixed amount.
    pub service_fee: f64,
    /// Max jobs processed per block.
    pub jobs_per_block: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            id: 0,
            peel_hops: 5,
            service_fee: 0.03,
            jobs_per_block: 4,
        }
    }
}

/// In-flight peel chain.
#[derive(Debug)]
struct PeelJob {
    /// Remaining value travelling down the chain.
    remaining: Amount,
    /// Final client destination.
    dest: Address,
    /// Hops still to perform.
    hops_left: usize,
    /// Per-hop payout to the destination.
    slice: Amount,
}

/// A coin-mixing service.
pub struct ServiceActor {
    cfg: ServiceConfig,
    wallet: Wallet,
    intake: Address,
    profit_addr: Address,
    jobs: Vec<PeelJob>,
}

impl ServiceActor {
    pub fn new(cfg: ServiceConfig, shared: &mut Shared) -> Self {
        let mut wallet = Wallet::new(ChangePolicy::FreshAddress);
        let intake = wallet.new_address(&mut shared.alloc);
        let profit_addr = wallet.new_address(&mut shared.alloc);
        if shared.dir.mixer_intakes.len() <= cfg.id {
            shared
                .dir
                .mixer_intakes
                .resize(cfg.id + 1, Address(u64::MAX));
        }
        shared.dir.mixer_intakes[cfg.id] = intake;
        Self {
            cfg,
            wallet,
            intake,
            profit_addr,
            jobs: Vec::new(),
        }
    }

    pub fn intake_address(&self) -> Address {
        self.intake
    }

    pub fn balance(&self) -> Amount {
        self.wallet.balance()
    }

    pub fn active_jobs(&self) -> usize {
        self.jobs.len()
    }

    fn accept_jobs(&mut self, shared: &mut Shared) {
        let (mine, rest): (Vec<_>, Vec<_>) = std::mem::take(&mut shared.mail.mix_jobs)
            .into_iter()
            .partition(|&(id, _, _)| id == self.cfg.id);
        shared.mail.mix_jobs = rest;
        for (_, dest, amount) in mine {
            let after_fee = amount.mul_f64(1.0 - self.cfg.service_fee);
            if after_fee.is_zero() || self.cfg.peel_hops == 0 {
                continue;
            }
            self.jobs.push(PeelJob {
                remaining: after_fee,
                dest,
                hops_left: self.cfg.peel_hops,
                slice: after_fee.div_n(self.cfg.peel_hops as u64),
            });
        }
    }

    fn run_peel_hops(&mut self, ctx: &mut StepCtx<'_>, shared: &mut Shared) {
        let mut processed = 0;
        let mut i = 0;
        while i < self.jobs.len() && processed < self.cfg.jobs_per_block {
            let job = &mut self.jobs[i];
            if self.wallet.balance() < job.slice + DEFAULT_FEE {
                i += 1;
                continue;
            }
            let last_hop = job.hops_left <= 1;
            let pay = if last_hop {
                job.remaining
            } else {
                job.slice.min(job.remaining)
            };
            if pay.is_zero() {
                self.jobs.swap_remove(i);
                continue;
            }
            let dest = job.dest;
            let nonce = ctx.next_nonce();
            // FreshAddress change policy makes every hop leave the remainder
            // on a brand-new service address: the peel chain.
            let tx = self.wallet.create_payment(
                vec![TxOut {
                    address: dest,
                    value: pay,
                }],
                DEFAULT_FEE,
                &mut shared.alloc,
                ctx.timestamp,
                nonce,
            );
            match tx {
                Some(tx) => {
                    ctx.submit(tx);
                    let job = &mut self.jobs[i];
                    job.remaining = job.remaining.saturating_sub(pay);
                    job.hops_left -= 1;
                    processed += 1;
                    if job.hops_left == 0 || job.remaining.is_zero() {
                        self.jobs.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
                None => {
                    i += 1;
                }
            }
        }
    }

    fn skim_profit(&mut self, ctx: &mut StepCtx<'_>, shared: &mut Shared) {
        // Occasionally consolidate accumulated fees.
        if ctx.rng.gen_bool(0.05) && self.wallet.num_utxos() > 8 {
            let nonce = ctx.next_nonce();
            if let Some(tx) =
                self.wallet
                    .consolidate(self.profit_addr, 8, DEFAULT_FEE, ctx.timestamp, nonce)
            {
                ctx.submit(tx);
            }
        }
        let _ = shared;
    }
}

impl Actor for ServiceActor {
    fn kind(&self) -> &'static str {
        "service-mixer"
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>, shared: &mut Shared) {
        self.accept_jobs(shared);
        self.run_peel_hops(ctx, shared);
        self.skim_profit(ctx, shared);
    }

    fn on_confirmed(&mut self, tx: &Transaction) {
        self.wallet.observe(tx);
    }

    fn collect_labels(&self, out: &mut BTreeMap<Address, Label>) {
        for a in self.wallet.addresses() {
            out.insert(a, Label::Service);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn step_at(actor: &mut ServiceActor, shared: &mut Shared, height: u64) -> Vec<Transaction> {
        let mut rng = StdRng::seed_from_u64(height + 31);
        let mut nonce = height * 1000;
        let mut out = Vec::new();
        let mut ctx = StepCtx::new(&mut rng, height * 600, height, &mut nonce, &mut out);
        actor.step(&mut ctx, shared);
        out
    }

    fn fund_intake(actor: &mut ServiceActor, btc: f64, nonce: u64) {
        let tx = Transaction::new(
            vec![],
            vec![TxOut {
                address: actor.intake_address(),
                value: Amount::from_btc(btc),
            }],
            0,
            nonce,
        );
        actor.on_confirmed(&tx);
    }

    #[test]
    fn mix_job_runs_full_peel_chain() {
        let mut shared = Shared::default();
        let mut mixer = ServiceActor::new(ServiceConfig::default(), &mut shared);
        fund_intake(&mut mixer, 10.0, 1);
        let dest = Address(777_777);
        shared.mail.mix_jobs.push((0, dest, Amount::from_btc(10.0)));

        let mut payouts = Vec::new();
        for h in 1..12 {
            let txs = step_at(&mut mixer, &mut shared, h);
            for tx in &txs {
                mixer.on_confirmed(tx);
                for o in &tx.outputs {
                    if o.address == dest {
                        payouts.push(o.value);
                    }
                }
            }
        }
        // Five hops, each paying a slice to the destination.
        assert_eq!(payouts.len(), 5, "saw {} payout hops", payouts.len());
        let total: Amount = payouts.iter().copied().sum();
        // ~97% of the deposit (3% service fee), minus nothing else.
        assert!(
            total >= Amount::from_btc(9.6) && total <= Amount::from_btc(9.71),
            "{total}"
        );
        assert_eq!(mixer.active_jobs(), 0);
    }

    #[test]
    fn peel_chain_creates_fresh_service_addresses() {
        let mut shared = Shared::default();
        let mut mixer = ServiceActor::new(ServiceConfig::default(), &mut shared);
        fund_intake(&mut mixer, 10.0, 1);
        shared
            .mail
            .mix_jobs
            .push((0, Address(777), Amount::from_btc(10.0)));
        let before = mixer.wallet.num_addresses();
        for h in 1..12 {
            let txs = step_at(&mut mixer, &mut shared, h);
            for tx in &txs {
                mixer.on_confirmed(tx);
            }
        }
        // Each hop with change mints a fresh address.
        assert!(mixer.wallet.num_addresses() >= before + 4);
    }

    #[test]
    fn foreign_jobs_left_in_mailbox() {
        let mut shared = Shared::default();
        let mut mixer = ServiceActor::new(ServiceConfig::default(), &mut shared);
        shared
            .mail
            .mix_jobs
            .push((9, Address(1), Amount::from_btc(1.0)));
        step_at(&mut mixer, &mut shared, 1);
        assert_eq!(shared.mail.mix_jobs.len(), 1);
    }

    #[test]
    fn unfunded_job_waits() {
        let mut shared = Shared::default();
        let mut mixer = ServiceActor::new(ServiceConfig::default(), &mut shared);
        shared
            .mail
            .mix_jobs
            .push((0, Address(1), Amount::from_btc(5.0)));
        let txs = step_at(&mut mixer, &mut shared, 1);
        assert!(txs.is_empty());
        assert_eq!(
            mixer.active_jobs(),
            1,
            "job stays queued until funds arrive"
        );
    }

    #[test]
    fn labels_are_service() {
        let mut shared = Shared::default();
        let mixer = ServiceActor::new(ServiceConfig::default(), &mut shared);
        let mut labels = BTreeMap::new();
        mixer.collect_labels(&mut labels);
        assert!(labels.values().all(|&l| l == Label::Service));
        assert!(labels.len() >= 2);
    }
}
