//! Unlabeled retail background traffic: peer-to-peer payments plus the
//! client side of exchange deposits/withdrawals and mixer usage. These
//! addresses form the anonymous crowd the labeled actors transact with.

use super::{Actor, Shared, StepCtx, DEFAULT_FEE};
use crate::address::{Address, Label};
use crate::amount::Amount;
use crate::dist;
use crate::tx::{Transaction, TxOut};
use crate::wallet::{ChangePolicy, Wallet};
use rand::Rng;
use std::collections::BTreeMap;

/// Tunables for the retail population.
#[derive(Clone, Debug)]
pub struct RetailConfig {
    /// Number of user wallets.
    pub num_users: usize,
    /// Expected p2p payments per block.
    pub p2p_per_block: f64,
    /// Expected exchange deposits per block.
    pub deposits_per_block: f64,
    /// Chance a deposit is followed by a queued withdrawal request.
    pub withdrawal_prob: f64,
    /// Expected mixer jobs initiated per block.
    pub mixes_per_block: f64,
    /// Median p2p payment (BTC).
    pub median_payment_btc: f64,
    /// Expected new users joining per block (drives the Fig. 1 growth
    /// curve). New users are funded by existing users.
    pub growth_per_block: f64,
}

impl Default for RetailConfig {
    fn default() -> Self {
        Self {
            num_users: 150,
            p2p_per_block: 8.0,
            deposits_per_block: 3.0,
            withdrawal_prob: 0.8,
            mixes_per_block: 2.0,
            median_payment_btc: 0.1,
            growth_per_block: 0.0,
        }
    }
}

/// The anonymous user crowd.
pub struct RetailActor {
    cfg: RetailConfig,
    users: Vec<Wallet>,
    /// Size of the founding population (rate baseline).
    initial_users: usize,
    /// Zipf popularity: a few heavy users make most payments, like reality.
    popularity: dist::ZipfSampler,
}

impl RetailActor {
    pub fn new(cfg: RetailConfig, shared: &mut Shared) -> Self {
        let users: Vec<Wallet> = (0..cfg.num_users)
            .map(|_| {
                let mut w = Wallet::new(ChangePolicy::FreshAddress);
                w.new_address(&mut shared.alloc);
                w
            })
            .collect();
        let popularity = dist::ZipfSampler::new(cfg.num_users, 0.8);
        let initial_users = cfg.num_users;
        Self {
            cfg,
            users,
            initial_users,
            popularity,
        }
    }

    /// Activity scales with the population: as adoption grows (Fig. 1), so
    /// does per-block transaction volume.
    fn rate(&self, base: f64) -> f64 {
        base * self.users.len() as f64 / self.initial_users.max(1) as f64
    }

    /// Primary funding address of every user (for the genesis premine).
    pub fn funding_addresses(&self) -> Vec<Address> {
        self.users
            .iter()
            .filter_map(|w| w.addresses().next())
            .collect()
    }

    pub fn total_balance(&self) -> Amount {
        self.users.iter().map(|w| w.balance()).sum()
    }

    fn pay(
        &mut self,
        user: usize,
        dest: Address,
        amount: Amount,
        ctx: &mut StepCtx<'_>,
        shared: &mut Shared,
    ) -> bool {
        if amount.is_zero() {
            return false;
        }
        let nonce = ctx.next_nonce();
        match self.users[user].create_payment(
            vec![TxOut {
                address: dest,
                value: amount,
            }],
            DEFAULT_FEE,
            &mut shared.alloc,
            ctx.timestamp,
            nonce,
        ) {
            Some(tx) => {
                ctx.submit(tx);
                true
            }
            None => false,
        }
    }

    fn sample_amount(&self, ctx: &mut StepCtx<'_>) -> Amount {
        Amount::from_btc(dist::log_normal(ctx.rng, self.cfg.median_payment_btc.ln(), 1.2).min(50.0))
    }

    /// Onboard new users: each is funded by an existing user, modelling the
    /// adoption growth behind the paper's Fig. 1.
    fn growth_round(&mut self, ctx: &mut StepCtx<'_>, shared: &mut Shared) {
        let n = dist::poisson(ctx.rng, self.cfg.growth_per_block) as usize;
        for _ in 0..n {
            let mut w = Wallet::new(ChangePolicy::FreshAddress);
            let addr = w.new_address(&mut shared.alloc);
            self.users.push(w);
            let sponsor = self.popularity.sample(ctx.rng);
            let amount = Amount::from_btc(self.cfg.median_payment_btc * 5.0);
            self.pay(sponsor, addr, amount, ctx, shared);
        }
    }

    fn pick_sender(&self, ctx: &mut StepCtx<'_>) -> usize {
        use rand::Rng as _;
        // Founders are the whales (zipf), but later joiners also transact.
        if ctx.rng.gen_bool(0.3) {
            ctx.rng.gen_range(0..self.users.len())
        } else {
            self.popularity.sample(ctx.rng)
        }
    }

    fn p2p_round(&mut self, ctx: &mut StepCtx<'_>, shared: &mut Shared) {
        let n = dist::poisson(ctx.rng, self.rate(self.cfg.p2p_per_block)) as usize;
        for _ in 0..n {
            let from = self.pick_sender(ctx);
            let to = ctx.rng.gen_range(0..self.users.len());
            if from == to {
                continue;
            }
            let dest = {
                let to_wallet = &mut self.users[to];
                to_wallet.new_address(&mut shared.alloc)
            };
            let amount = self.sample_amount(ctx);
            self.pay(from, dest, amount, ctx, shared);
        }
    }

    fn exchange_round(&mut self, ctx: &mut StepCtx<'_>, shared: &mut Shared) {
        let n = dist::poisson(ctx.rng, self.rate(self.cfg.deposits_per_block)) as usize;
        for _ in 0..n {
            let user = self.pick_sender(ctx);
            let Some((ex, dep)) = shared.dir.take_exchange_deposit(ctx.rng) else {
                break;
            };
            let amount = self.sample_amount(ctx);
            if self.pay(user, dep, amount, ctx, shared)
                && ctx.rng.gen_bool(self.cfg.withdrawal_prob)
            {
                // Later withdraw roughly what was deposited to a fresh address.
                let back = self.users[user].new_address(&mut shared.alloc);
                let w_amount = amount.mul_f64(0.6 + 0.35 * ctx.rng.gen::<f64>());
                shared.mail.withdrawals.push((ex, back, w_amount));
            }
        }
    }

    fn mixer_round(&mut self, ctx: &mut StepCtx<'_>, shared: &mut Shared) {
        if shared.dir.mixer_intakes.is_empty() {
            return;
        }
        let n = dist::poisson(ctx.rng, self.rate(self.cfg.mixes_per_block)) as usize;
        for _ in 0..n {
            let user = self.pick_sender(ctx);
            let mixer = ctx.rng.gen_range(0..shared.dir.mixer_intakes.len());
            let intake = shared.dir.mixer_intakes[mixer];
            if intake == Address(u64::MAX) {
                continue;
            }
            let amount = self.sample_amount(ctx).mul_f64(3.0); // mixes skew larger
            if self.pay(user, intake, amount, ctx, shared) {
                let dest = self.users[user].new_address(&mut shared.alloc);
                shared.mail.mix_jobs.push((mixer, dest, amount));
            }
        }
    }
}

impl Actor for RetailActor {
    fn kind(&self) -> &'static str {
        "retail"
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>, shared: &mut Shared) {
        self.growth_round(ctx, shared);
        self.p2p_round(ctx, shared);
        self.exchange_round(ctx, shared);
        self.mixer_round(ctx, shared);
    }

    fn on_confirmed(&mut self, tx: &Transaction) {
        for w in &mut self.users {
            w.observe(tx);
        }
    }

    fn collect_labels(&self, _out: &mut BTreeMap<Address, Label>) {
        // Retail addresses are the unlabeled background population.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn step_at(actor: &mut RetailActor, shared: &mut Shared, height: u64) -> Vec<Transaction> {
        let mut rng = StdRng::seed_from_u64(height + 13);
        let mut nonce = height * 10_000;
        let mut out = Vec::new();
        let mut ctx = StepCtx::new(&mut rng, height * 600, height, &mut nonce, &mut out);
        actor.step(&mut ctx, shared);
        out
    }

    fn fund_all(actor: &mut RetailActor, btc: f64) {
        for (i, addr) in actor.funding_addresses().into_iter().enumerate() {
            let tx = Transaction::new(
                vec![],
                vec![TxOut {
                    address: addr,
                    value: Amount::from_btc(btc),
                }],
                0,
                800_000 + i as u64,
            );
            actor.on_confirmed(&tx);
        }
    }

    #[test]
    fn p2p_traffic_flows_between_users() {
        let mut shared = Shared::default();
        let mut retail = RetailActor::new(RetailConfig::default(), &mut shared);
        fund_all(&mut retail, 5.0);
        let mut count = 0;
        for h in 1..6 {
            let txs = step_at(&mut retail, &mut shared, h);
            count += txs.len();
            for tx in &txs {
                retail.on_confirmed(tx);
            }
        }
        assert!(count > 15, "expected steady p2p volume, saw {count}");
    }

    #[test]
    fn deposits_consume_directory_addresses_and_queue_withdrawals() {
        let mut shared = Shared::default();
        shared.dir.exchange_deposits = vec![(0..100).map(|i| Address(1_000_000 + i)).collect()];
        let mut retail = RetailActor::new(RetailConfig::default(), &mut shared);
        fund_all(&mut retail, 5.0);
        let before = shared.dir.exchange_deposits[0].len();
        for h in 1..8 {
            let txs = step_at(&mut retail, &mut shared, h);
            for tx in &txs {
                retail.on_confirmed(tx);
            }
        }
        assert!(shared.dir.exchange_deposits[0].len() < before);
        assert!(!shared.mail.withdrawals.is_empty());
    }

    #[test]
    fn mixer_jobs_are_enqueued_with_payment() {
        let mut shared = Shared::default();
        shared.dir.mixer_intakes = vec![Address(5_000_000)];
        let mut retail = RetailActor::new(
            RetailConfig {
                mixes_per_block: 5.0,
                ..Default::default()
            },
            &mut shared,
        );
        fund_all(&mut retail, 20.0);
        let mut mix_payments = 0;
        for h in 1..6 {
            let txs = step_at(&mut retail, &mut shared, h);
            mix_payments += txs
                .iter()
                .filter(|t| t.outputs.iter().any(|o| o.address == Address(5_000_000)))
                .count();
            for tx in &txs {
                retail.on_confirmed(tx);
            }
        }
        assert!(mix_payments > 0);
        assert_eq!(shared.mail.mix_jobs.len(), mix_payments);
    }

    #[test]
    fn unfunded_population_is_quiet() {
        let mut shared = Shared::default();
        let mut retail = RetailActor::new(RetailConfig::default(), &mut shared);
        let txs = step_at(&mut retail, &mut shared, 1);
        assert!(txs.is_empty());
    }

    #[test]
    fn retail_contributes_no_labels() {
        let mut shared = Shared::default();
        let retail = RetailActor::new(RetailConfig::default(), &mut shared);
        let mut labels = BTreeMap::new();
        retail.collect_labels(&mut labels);
        assert!(labels.is_empty());
    }
}
