//! Gambling behavior: many small, frequent, roughly symmetric flows between
//! gambler addresses and the house — high transaction counts, low values,
//! tight time cadence.

use super::{Actor, Shared, StepCtx, DEFAULT_FEE};
use crate::address::{Address, Label};
use crate::amount::Amount;
use crate::dist;
use crate::tx::{Transaction, TxOut};
use crate::wallet::{ChangePolicy, Wallet};
use rand::Rng;
use std::collections::BTreeMap;

/// Tunables for one gambling site.
#[derive(Clone, Debug)]
pub struct GamblingConfig {
    /// This house's index in `Directory::house_addresses`.
    pub id: usize,
    /// Number of gambler wallets playing at this house.
    pub num_gamblers: usize,
    /// Expected bets placed per block across all gamblers.
    pub bets_per_block: f64,
    /// House edge: win probability for a 2x payout.
    pub win_prob: f64,
    /// Typical bet size (log-normal median), in BTC.
    pub median_bet_btc: f64,
}

impl Default for GamblingConfig {
    fn default() -> Self {
        Self {
            id: 0,
            num_gamblers: 40,
            bets_per_block: 4.0,
            win_prob: 0.474,
            median_bet_btc: 0.02,
        }
    }
}

/// A gambling site (house wallet) and its gamblers.
pub struct GamblingActor {
    cfg: GamblingConfig,
    house: Wallet,
    house_addr: Address,
    gamblers: Vec<Wallet>,
    /// Wins owed: (gambler wallet index, payout) settled next step.
    pending_payouts: Vec<(usize, Amount)>,
}

impl GamblingActor {
    pub fn new(cfg: GamblingConfig, shared: &mut Shared) -> Self {
        let mut house = Wallet::new(ChangePolicy::ReuseInput);
        let house_addr = house.new_address(&mut shared.alloc);
        if shared.dir.house_addresses.len() <= cfg.id {
            shared
                .dir
                .house_addresses
                .resize(cfg.id + 1, Address(u64::MAX));
        }
        shared.dir.house_addresses[cfg.id] = house_addr;
        let gamblers = (0..cfg.num_gamblers)
            .map(|_| {
                let mut w = Wallet::new(ChangePolicy::FreshAddress);
                w.new_address(&mut shared.alloc);
                w
            })
            .collect();
        Self {
            cfg,
            house,
            house_addr,
            gamblers,
            pending_payouts: Vec::new(),
        }
    }

    pub fn house_address(&self) -> Address {
        self.house_addr
    }

    /// Primary receiving address of each gambler (for external funding).
    pub fn gambler_addresses(&self) -> Vec<Address> {
        self.gamblers
            .iter()
            .filter_map(|w| w.addresses().next())
            .collect()
    }

    pub fn house_balance(&self) -> Amount {
        self.house.balance()
    }

    fn settle_payouts(&mut self, ctx: &mut StepCtx<'_>, shared: &mut Shared) {
        let pending = std::mem::take(&mut self.pending_payouts);
        for (gi, amount) in pending {
            let Some(dest) = self.gamblers[gi].addresses().next() else {
                continue;
            };
            let nonce = ctx.next_nonce();
            if let Some(tx) = self.house.create_payment(
                vec![TxOut {
                    address: dest,
                    value: amount,
                }],
                DEFAULT_FEE,
                &mut shared.alloc,
                ctx.timestamp,
                nonce,
            ) {
                ctx.submit(tx);
            }
        }
    }

    fn place_bets(&mut self, ctx: &mut StepCtx<'_>, shared: &mut Shared) {
        let n_bets = dist::poisson(ctx.rng, self.cfg.bets_per_block) as usize;
        let mu = self.cfg.median_bet_btc.ln();
        for _ in 0..n_bets {
            let gi = ctx.rng.gen_range(0..self.gamblers.len());
            let bet = Amount::from_btc(dist::log_normal(ctx.rng, mu, 0.8).min(5.0));
            if bet.is_zero() {
                continue;
            }
            let house_addr = self.house_addr;
            let nonce = ctx.next_nonce();
            let Some(tx) = self.gamblers[gi].create_payment(
                vec![TxOut {
                    address: house_addr,
                    value: bet,
                }],
                DEFAULT_FEE,
                &mut shared.alloc,
                ctx.timestamp,
                nonce,
            ) else {
                continue; // broke gambler
            };
            ctx.submit(tx);
            if ctx.rng.gen_bool(self.cfg.win_prob) {
                self.pending_payouts.push((gi, bet.mul_f64(2.0)));
            }
        }
    }
}

impl Actor for GamblingActor {
    fn kind(&self) -> &'static str {
        "gambling"
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>, shared: &mut Shared) {
        self.settle_payouts(ctx, shared);
        self.place_bets(ctx, shared);
    }

    fn on_confirmed(&mut self, tx: &Transaction) {
        self.house.observe(tx);
        for g in &mut self.gamblers {
            g.observe(tx);
        }
    }

    fn collect_labels(&self, out: &mut BTreeMap<Address, Label>) {
        for a in self.house.addresses() {
            out.insert(a, Label::Gambling);
        }
        for g in &self.gamblers {
            for a in g.addresses() {
                out.insert(a, Label::Gambling);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn step_at(actor: &mut GamblingActor, shared: &mut Shared, height: u64) -> Vec<Transaction> {
        let mut rng = StdRng::seed_from_u64(height + 77);
        let mut nonce = height * 1000;
        let mut out = Vec::new();
        let mut ctx = StepCtx::new(&mut rng, height * 600, height, &mut nonce, &mut out);
        actor.step(&mut ctx, shared);
        out
    }

    fn fund_gamblers(actor: &mut GamblingActor, btc: f64) {
        for (i, addr) in actor.gambler_addresses().into_iter().enumerate() {
            let tx = Transaction::new(
                vec![],
                vec![TxOut {
                    address: addr,
                    value: Amount::from_btc(btc),
                }],
                0,
                500_000 + i as u64,
            );
            actor.on_confirmed(&tx);
        }
    }

    #[test]
    fn funded_gamblers_place_bets() {
        let mut shared = Shared::default();
        let mut g = GamblingActor::new(GamblingConfig::default(), &mut shared);
        fund_gamblers(&mut g, 2.0);
        let mut total_bets = 0;
        for h in 1..10 {
            let txs = step_at(&mut g, &mut shared, h);
            total_bets += txs
                .iter()
                .filter(|t| t.outputs.iter().any(|o| o.address == g.house_address()))
                .count();
            for tx in &txs {
                g.on_confirmed(tx);
            }
        }
        assert!(total_bets > 10, "expected steady betting, saw {total_bets}");
    }

    #[test]
    fn broke_gamblers_cannot_bet() {
        let mut shared = Shared::default();
        let mut g = GamblingActor::new(GamblingConfig::default(), &mut shared);
        let txs = step_at(&mut g, &mut shared, 1);
        assert!(txs.is_empty());
    }

    #[test]
    fn wins_are_paid_next_step() {
        let mut shared = Shared::default();
        let cfg = GamblingConfig {
            win_prob: 1.0,
            bets_per_block: 10.0,
            ..Default::default()
        };
        let mut g = GamblingActor::new(cfg, &mut shared);
        fund_gamblers(&mut g, 2.0);
        // House needs float to pay winners.
        let float = Transaction::new(
            vec![],
            vec![TxOut {
                address: g.house_address(),
                value: Amount::from_btc(100.0),
            }],
            0,
            999_999,
        );
        g.on_confirmed(&float);
        let bets = step_at(&mut g, &mut shared, 1);
        for tx in &bets {
            g.on_confirmed(tx);
        }
        assert!(!g.pending_payouts.is_empty());
        let payouts = step_at(&mut g, &mut shared, 2);
        let from_house: Vec<_> = payouts
            .iter()
            .filter(|t| t.inputs.iter().any(|i| i.address == g.house_address()))
            .collect();
        assert!(!from_house.is_empty(), "house should pay winners");
    }

    #[test]
    fn house_registered_in_directory() {
        let mut shared = Shared::default();
        let g = GamblingActor::new(GamblingConfig::default(), &mut shared);
        assert_eq!(shared.dir.house_addresses[0], g.house_address());
    }

    #[test]
    fn labels_cover_house_and_gamblers() {
        let mut shared = Shared::default();
        let g = GamblingActor::new(GamblingConfig::default(), &mut shared);
        let mut labels = BTreeMap::new();
        g.collect_labels(&mut labels);
        assert_eq!(labels.len(), 41);
        assert!(labels.values().all(|&l| l == Label::Gambling));
    }
}
