//! Bitcoin amounts in satoshis with checked arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Satoshis per bitcoin.
pub const SATS_PER_BTC: u64 = 100_000_000;

/// A non-negative bitcoin amount in satoshis.
///
/// Arithmetic panics on overflow/underflow in debug and release alike — an
/// amount that wraps is always a simulator bug, never valid data.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Amount(u64);

impl Amount {
    pub const ZERO: Amount = Amount(0);

    /// From raw satoshis.
    pub const fn from_sats(sats: u64) -> Self {
        Amount(sats)
    }

    /// From a BTC value (rounds to the nearest satoshi).
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn from_btc(btc: f64) -> Self {
        assert!(btc.is_finite() && btc >= 0.0, "invalid BTC amount {btc}");
        Amount((btc * SATS_PER_BTC as f64).round() as u64)
    }

    pub const fn sats(self) -> u64 {
        self.0
    }

    pub fn btc(self) -> f64 {
        self.0 as f64 / SATS_PER_BTC as f64
    }

    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, rhs: Amount) -> Option<Amount> {
        self.0.checked_sub(rhs.0).map(Amount)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Amount) -> Amount {
        Amount(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by a non-negative factor (e.g. a payout multiplier).
    pub fn mul_f64(self, factor: f64) -> Amount {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor {factor}"
        );
        Amount((self.0 as f64 * factor).round() as u64)
    }

    /// Integer division into `n` equal shares (remainder dropped).
    pub fn div_n(self, n: u64) -> Amount {
        assert!(n > 0, "division by zero shares");
        Amount(self.0 / n)
    }

    pub fn min(self, rhs: Amount) -> Amount {
        Amount(self.0.min(rhs.0))
    }

    pub fn max(self, rhs: Amount) -> Amount {
        Amount(self.0.max(rhs.0))
    }
}

impl Add for Amount {
    type Output = Amount;
    fn add(self, rhs: Amount) -> Amount {
        Amount(self.0.checked_add(rhs.0).expect("Amount overflow"))
    }
}

impl AddAssign for Amount {
    fn add_assign(&mut self, rhs: Amount) {
        *self = *self + rhs;
    }
}

impl Sub for Amount {
    type Output = Amount;
    fn sub(self, rhs: Amount) -> Amount {
        Amount(self.0.checked_sub(rhs.0).expect("Amount underflow"))
    }
}

impl SubAssign for Amount {
    fn sub_assign(&mut self, rhs: Amount) {
        *self = *self - rhs;
    }
}

impl Sum for Amount {
    fn sum<I: Iterator<Item = Amount>>(iter: I) -> Amount {
        iter.fold(Amount::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.8} BTC", self.btc())
    }
}

impl fmt::Debug for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} sat", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btc_roundtrip() {
        let a = Amount::from_btc(1.5);
        assert_eq!(a.sats(), 150_000_000);
        assert!((a.btc() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = Amount::from_sats(100) + Amount::from_sats(50);
        assert_eq!(a.sats(), 150);
        assert_eq!((a - Amount::from_sats(30)).sats(), 120);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let _ = Amount::from_sats(1) - Amount::from_sats(2);
    }

    #[test]
    fn checked_and_saturating_sub() {
        assert_eq!(Amount::from_sats(1).checked_sub(Amount::from_sats(2)), None);
        assert_eq!(
            Amount::from_sats(1).saturating_sub(Amount::from_sats(2)),
            Amount::ZERO
        );
    }

    #[test]
    fn div_n_drops_remainder() {
        assert_eq!(Amount::from_sats(10).div_n(3).sats(), 3);
    }

    #[test]
    fn sum_iterator() {
        let total: Amount = (1..=4).map(Amount::from_sats).sum();
        assert_eq!(total.sats(), 10);
    }

    #[test]
    fn display_formats_btc() {
        assert_eq!(Amount::from_sats(150_000_000).to_string(), "1.50000000 BTC");
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(Amount::from_sats(100).mul_f64(0.333).sats(), 33);
    }
}
