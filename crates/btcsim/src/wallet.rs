//! Wallets: address management, coin selection, and the change mechanism.
//!
//! Models the behavior described in the paper's §II-A: when a wallet spends,
//! it zeroes out the consumed UTXOs and sends any leftover funds to a freshly
//! generated change address, which preserves privacy but makes address
//! behavior hard to analyse — exactly the difficulty BAClassifier targets.

use crate::address::Address;
use crate::amount::Amount;
use crate::tx::{OutPoint, Transaction, TxIn, TxOut};
use std::collections::{BTreeMap, BTreeSet};

/// Allocates globally-unique addresses.
#[derive(Clone, Debug, Default)]
pub struct AddressAlloc {
    next: u64,
}

impl AddressAlloc {
    pub fn new() -> Self {
        Self::default()
    }

    // Not an `Iterator`: allocation is infallible and never ends.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Address {
        let a = Address(self.next);
        self.next += 1;
        a
    }

    /// Number of addresses allocated so far.
    pub fn count(&self) -> u64 {
        self.next
    }
}

/// How a wallet handles change outputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChangePolicy {
    /// Always generate a fresh address (modern wallet default, §II-A).
    FreshAddress,
    /// Return change to the first input's address (legacy behavior; used by
    /// some services — makes clustering heuristics work, which BitScope
    /// exploits).
    ReuseInput,
}

/// A simulated wallet: a set of owned addresses and their unspent outputs.
///
/// UTXOs are kept in a `BTreeMap` so coin selection is deterministic.
#[derive(Clone, Debug)]
pub struct Wallet {
    addresses: BTreeSet<Address>,
    utxos: BTreeMap<OutPoint, TxOut>,
    change_policy: ChangePolicy,
}

impl Wallet {
    pub fn new(change_policy: ChangePolicy) -> Self {
        Self {
            addresses: BTreeSet::new(),
            utxos: BTreeMap::new(),
            change_policy,
        }
    }

    /// Mint and own a new address.
    pub fn new_address(&mut self, alloc: &mut AddressAlloc) -> Address {
        let a = alloc.next();
        self.addresses.insert(a);
        a
    }

    /// Adopt an externally created address.
    pub fn adopt(&mut self, a: Address) {
        self.addresses.insert(a);
    }

    pub fn owns(&self, a: Address) -> bool {
        self.addresses.contains(&a)
    }

    pub fn addresses(&self) -> impl Iterator<Item = Address> + '_ {
        self.addresses.iter().copied()
    }

    pub fn num_addresses(&self) -> usize {
        self.addresses.len()
    }

    /// Spendable balance.
    pub fn balance(&self) -> Amount {
        self.utxos.values().map(|o| o.value).sum()
    }

    pub fn num_utxos(&self) -> usize {
        self.utxos.len()
    }

    /// Update the UTXO view from a confirmed transaction: drop spent inputs,
    /// pick up outputs paying owned addresses.
    pub fn observe(&mut self, tx: &Transaction) {
        for input in &tx.inputs {
            self.utxos.remove(&input.prevout);
        }
        for (vout, output) in tx.outputs.iter().enumerate() {
            if !output.value.is_zero() && self.addresses.contains(&output.address) {
                self.utxos.insert(
                    OutPoint {
                        txid: tx.txid,
                        vout: vout as u32,
                    },
                    *output,
                );
            }
        }
    }

    /// Build a payment covering `payments` plus `fee`, using largest-first
    /// coin selection; leftover goes to a change output per the wallet's
    /// [`ChangePolicy`]. Returns `None` when the balance is insufficient.
    ///
    /// The created transaction is not yet confirmed: the caller must route it
    /// through a block and then [`Wallet::observe`] it (the simulator does
    /// both).
    pub fn create_payment(
        &mut self,
        payments: Vec<TxOut>,
        fee: Amount,
        alloc: &mut AddressAlloc,
        timestamp: u64,
        nonce: u64,
    ) -> Option<Transaction> {
        assert!(!payments.is_empty(), "payment with no outputs");
        let target = payments.iter().map(|o| o.value).sum::<Amount>() + fee;
        if self.balance() < target {
            return None;
        }
        // Largest-first selection: deterministic and keeps input counts low.
        let mut candidates: Vec<(OutPoint, TxOut)> =
            self.utxos.iter().map(|(&op, &o)| (op, o)).collect();
        candidates.sort_by(|a, b| b.1.value.cmp(&a.1.value).then(a.0.txid.0.cmp(&b.0.txid.0)));
        let mut inputs = Vec::new();
        let mut gathered = Amount::ZERO;
        for (op, o) in candidates {
            inputs.push(TxIn {
                prevout: op,
                address: o.address,
                value: o.value,
            });
            gathered += o.value;
            if gathered >= target {
                break;
            }
        }
        debug_assert!(gathered >= target);
        let change = gathered - target;
        let mut outputs = payments;
        if !change.is_zero() {
            let change_addr = match self.change_policy {
                ChangePolicy::FreshAddress => self.new_address(alloc),
                ChangePolicy::ReuseInput => inputs[0].address,
            };
            outputs.push(TxOut {
                address: change_addr,
                value: change,
            });
        }
        let tx = Transaction::new(inputs, outputs, timestamp, nonce);
        // Optimistically mark inputs spent so back-to-back payments within a
        // block do not double-spend; confirmation re-observes harmlessly.
        for input in &tx.inputs {
            self.utxos.remove(&input.prevout);
        }
        Some(tx)
    }

    /// Consolidate up to `max_inputs` UTXOs into a single output at `dest`
    /// (exchange sweep / mixer merge pattern). `None` if fewer than 2 UTXOs
    /// or the swept value does not cover the fee.
    pub fn consolidate(
        &mut self,
        dest: Address,
        max_inputs: usize,
        fee: Amount,
        timestamp: u64,
        nonce: u64,
    ) -> Option<Transaction> {
        if self.utxos.len() < 2 {
            return None;
        }
        let take: Vec<(OutPoint, TxOut)> = self
            .utxos
            .iter()
            .take(max_inputs.max(2))
            .map(|(&op, &o)| (op, o))
            .collect();
        let total: Amount = take.iter().map(|(_, o)| o.value).sum();
        let swept = total.checked_sub(fee)?;
        if swept.is_zero() {
            return None;
        }
        let inputs: Vec<TxIn> = take
            .iter()
            .map(|&(op, o)| TxIn {
                prevout: op,
                address: o.address,
                value: o.value,
            })
            .collect();
        let tx = Transaction::new(
            inputs,
            vec![TxOut {
                address: dest,
                value: swept,
            }],
            timestamp,
            nonce,
        );
        for input in &tx.inputs {
            self.utxos.remove(&input.prevout);
        }
        Some(tx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fund(wallet: &mut Wallet, alloc: &mut AddressAlloc, sats: u64, nonce: u64) -> Transaction {
        let addr = wallet.new_address(alloc);
        let tx = Transaction::new(
            vec![],
            vec![TxOut {
                address: addr,
                value: Amount::from_sats(sats),
            }],
            0,
            nonce,
        );
        wallet.observe(&tx);
        tx
    }

    #[test]
    fn observe_tracks_balance() {
        let mut alloc = AddressAlloc::new();
        let mut w = Wallet::new(ChangePolicy::FreshAddress);
        fund(&mut w, &mut alloc, 100, 0);
        fund(&mut w, &mut alloc, 50, 1);
        assert_eq!(w.balance(), Amount::from_sats(150));
        assert_eq!(w.num_utxos(), 2);
    }

    #[test]
    fn payment_with_fresh_change() {
        let mut alloc = AddressAlloc::new();
        let mut w = Wallet::new(ChangePolicy::FreshAddress);
        fund(&mut w, &mut alloc, 100, 0);
        let before = w.num_addresses();
        let tx = w
            .create_payment(
                vec![TxOut {
                    address: Address(999),
                    value: Amount::from_sats(60),
                }],
                Amount::from_sats(5),
                &mut alloc,
                10,
                1,
            )
            .unwrap();
        // 100 - 60 - 5 = 35 change to a fresh owned address.
        assert_eq!(tx.outputs.len(), 2);
        assert_eq!(tx.outputs[1].value, Amount::from_sats(35));
        assert!(w.owns(tx.outputs[1].address));
        assert_eq!(w.num_addresses(), before + 1);
        assert_eq!(tx.fee(), Amount::from_sats(5));
    }

    #[test]
    fn reuse_input_change_policy() {
        let mut alloc = AddressAlloc::new();
        let mut w = Wallet::new(ChangePolicy::ReuseInput);
        let funding = fund(&mut w, &mut alloc, 100, 0);
        let src = funding.outputs[0].address;
        let tx = w
            .create_payment(
                vec![TxOut {
                    address: Address(999),
                    value: Amount::from_sats(40),
                }],
                Amount::ZERO,
                &mut alloc,
                10,
                1,
            )
            .unwrap();
        assert_eq!(tx.outputs[1].address, src);
    }

    #[test]
    fn insufficient_balance_returns_none() {
        let mut alloc = AddressAlloc::new();
        let mut w = Wallet::new(ChangePolicy::FreshAddress);
        fund(&mut w, &mut alloc, 10, 0);
        let res = w.create_payment(
            vec![TxOut {
                address: Address(999),
                value: Amount::from_sats(60),
            }],
            Amount::ZERO,
            &mut alloc,
            10,
            1,
        );
        assert!(res.is_none());
        // Balance untouched by the failed attempt.
        assert_eq!(w.balance(), Amount::from_sats(10));
    }

    #[test]
    fn sequential_payments_do_not_double_spend() {
        let mut alloc = AddressAlloc::new();
        let mut w = Wallet::new(ChangePolicy::FreshAddress);
        fund(&mut w, &mut alloc, 100, 0);
        let tx1 = w
            .create_payment(
                vec![TxOut {
                    address: Address(999),
                    value: Amount::from_sats(30),
                }],
                Amount::ZERO,
                &mut alloc,
                10,
                1,
            )
            .unwrap();
        // Before confirmation the wallet already marked inputs spent: a second
        // payment cannot reuse them.
        let tx2 = w.create_payment(
            vec![TxOut {
                address: Address(998),
                value: Amount::from_sats(30),
            }],
            Amount::ZERO,
            &mut alloc,
            10,
            2,
        );
        assert!(tx2.is_none());
        // After confirming tx1 the change becomes spendable again.
        w.observe(&tx1);
        let tx3 = w.create_payment(
            vec![TxOut {
                address: Address(998),
                value: Amount::from_sats(30),
            }],
            Amount::ZERO,
            &mut alloc,
            11,
            3,
        );
        assert!(tx3.is_some());
    }

    #[test]
    fn exact_spend_has_no_change_output() {
        let mut alloc = AddressAlloc::new();
        let mut w = Wallet::new(ChangePolicy::FreshAddress);
        fund(&mut w, &mut alloc, 100, 0);
        let tx = w
            .create_payment(
                vec![TxOut {
                    address: Address(999),
                    value: Amount::from_sats(95),
                }],
                Amount::from_sats(5),
                &mut alloc,
                10,
                1,
            )
            .unwrap();
        assert_eq!(tx.outputs.len(), 1);
    }

    #[test]
    fn consolidate_sweeps_many_utxos() {
        let mut alloc = AddressAlloc::new();
        let mut w = Wallet::new(ChangePolicy::FreshAddress);
        for i in 0..5 {
            fund(&mut w, &mut alloc, 10, i);
        }
        let dest = Address(12345);
        let tx = w
            .consolidate(dest, 10, Amount::from_sats(2), 100, 99)
            .unwrap();
        assert_eq!(tx.inputs.len(), 5);
        assert_eq!(tx.outputs.len(), 1);
        assert_eq!(tx.outputs[0].value, Amount::from_sats(48));
        assert_eq!(tx.outputs[0].address, dest);
    }

    #[test]
    fn consolidate_needs_at_least_two_utxos() {
        let mut alloc = AddressAlloc::new();
        let mut w = Wallet::new(ChangePolicy::FreshAddress);
        fund(&mut w, &mut alloc, 10, 0);
        assert!(w.consolidate(Address(1), 10, Amount::ZERO, 0, 1).is_none());
    }

    #[test]
    fn multi_utxo_payment_gathers_enough_inputs() {
        let mut alloc = AddressAlloc::new();
        let mut w = Wallet::new(ChangePolicy::FreshAddress);
        for i in 0..4 {
            fund(&mut w, &mut alloc, 25, i);
        }
        let tx = w
            .create_payment(
                vec![TxOut {
                    address: Address(999),
                    value: Amount::from_sats(70),
                }],
                Amount::ZERO,
                &mut alloc,
                10,
                9,
            )
            .unwrap();
        assert!(tx.inputs.len() >= 3);
        assert_eq!(tx.input_value(), tx.output_value());
    }
}
