//! The mempool: pending transactions ordered by fee rate, with bounded
//! block assembly. With an unbounded block size the simulator behaves as if
//! every transaction confirms immediately; a bound creates the fee-market
//! congestion dynamics real chains exhibit.

use crate::amount::Amount;
use crate::tx::{Transaction, Txid};
use std::collections::HashSet;

/// Pending transactions awaiting confirmation.
#[derive(Clone, Debug, Default)]
pub struct Mempool {
    txs: Vec<Transaction>,
    seen: HashSet<Txid>,
}

impl Mempool {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.txs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Submit a transaction. Duplicate txids are ignored (idempotent relay).
    pub fn submit(&mut self, tx: Transaction) {
        if self.seen.insert(tx.txid) {
            self.txs.push(tx);
        }
    }

    /// Fee per byte-proxy: fee divided by (inputs + outputs), the simulator's
    /// stand-in for weight units.
    fn fee_rate(tx: &Transaction) -> f64 {
        let size = (tx.inputs.len() + tx.outputs.len()).max(1) as f64;
        tx.fee().sats() as f64 / size
    }

    /// Total fees currently pending.
    pub fn pending_fees(&self) -> Amount {
        self.txs.iter().map(|t| t.fee()).sum()
    }

    /// Assemble the next block's transactions: up to `max` transactions,
    /// highest fee rate first (coinbase transactions always qualify first —
    /// they carry no fee but create the block). Remaining transactions stay
    /// pending. Selection is deterministic: ties break by submission order.
    pub fn take_block(&mut self, max: usize) -> Vec<Transaction> {
        if self.txs.len() <= max {
            let drained = std::mem::take(&mut self.txs);
            self.seen.clear();
            return drained;
        }
        // Stable sort preserves submission order among equal fee rates.
        let mut order: Vec<usize> = (0..self.txs.len()).collect();
        order.sort_by(|&a, &b| {
            let (ta, tb) = (&self.txs[a], &self.txs[b]);
            tb.is_coinbase()
                .cmp(&ta.is_coinbase())
                .then(
                    Self::fee_rate(tb)
                        .partial_cmp(&Self::fee_rate(ta))
                        .expect("finite fee rates"),
                )
                .then(a.cmp(&b))
        });
        let chosen: HashSet<usize> = order[..max].iter().copied().collect();
        let mut block = Vec::with_capacity(max);
        let mut rest = Vec::with_capacity(self.txs.len() - max);
        for (i, tx) in std::mem::take(&mut self.txs).into_iter().enumerate() {
            if chosen.contains(&i) {
                self.seen.remove(&tx.txid);
                block.push(tx);
            } else {
                rest.push(tx);
            }
        }
        self.txs = rest;
        // Keep the block in fee-rate order too (miners order by rate).
        block.sort_by(|a, b| {
            b.is_coinbase().cmp(&a.is_coinbase()).then(
                Self::fee_rate(b)
                    .partial_cmp(&Self::fee_rate(a))
                    .expect("finite"),
            )
        });
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use crate::tx::{OutPoint, TxIn, TxOut};

    fn tx_with_fee(fee_sats: u64, nonce: u64) -> Transaction {
        Transaction::new(
            vec![TxIn {
                prevout: OutPoint {
                    txid: Txid(nonce),
                    vout: 0,
                },
                address: Address(1),
                value: Amount::from_sats(10_000),
            }],
            vec![TxOut {
                address: Address(2),
                value: Amount::from_sats(10_000 - fee_sats),
            }],
            0,
            nonce,
        )
    }

    #[test]
    fn unbounded_block_drains_everything() {
        let mut pool = Mempool::new();
        for i in 0..5 {
            pool.submit(tx_with_fee(100, i));
        }
        let block = pool.take_block(usize::MAX);
        assert_eq!(block.len(), 5);
        assert!(pool.is_empty());
    }

    #[test]
    fn bounded_block_takes_highest_fee_rates_first() {
        let mut pool = Mempool::new();
        pool.submit(tx_with_fee(10, 1));
        pool.submit(tx_with_fee(500, 2));
        pool.submit(tx_with_fee(100, 3));
        let block = pool.take_block(2);
        assert_eq!(block.len(), 2);
        let fees: Vec<u64> = block.iter().map(|t| t.fee().sats()).collect();
        assert_eq!(fees, vec![500, 100]);
        assert_eq!(pool.len(), 1);
        // The cheap transaction confirms next block.
        let next = pool.take_block(2);
        assert_eq!(next[0].fee().sats(), 10);
    }

    #[test]
    fn coinbase_always_included_first() {
        let mut pool = Mempool::new();
        pool.submit(tx_with_fee(900, 1));
        let coinbase = Transaction::new(
            vec![],
            vec![TxOut {
                address: Address(9),
                value: Amount::from_sats(625_000_000),
            }],
            0,
            2,
        );
        pool.submit(coinbase.clone());
        let block = pool.take_block(1);
        assert_eq!(block[0].txid, coinbase.txid, "coinbase outranks any fee");
    }

    #[test]
    fn duplicate_submission_is_idempotent() {
        let mut pool = Mempool::new();
        let tx = tx_with_fee(50, 7);
        pool.submit(tx.clone());
        pool.submit(tx);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn pending_fees_tracks_total() {
        let mut pool = Mempool::new();
        pool.submit(tx_with_fee(30, 1));
        pool.submit(tx_with_fee(70, 2));
        assert_eq!(pool.pending_fees(), Amount::from_sats(100));
    }

    #[test]
    fn selection_is_deterministic_on_ties() {
        let build = || {
            let mut pool = Mempool::new();
            for i in 0..6 {
                pool.submit(tx_with_fee(100, i)); // equal fee rates
            }
            pool.take_block(3)
                .iter()
                .map(|t| t.txid)
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
