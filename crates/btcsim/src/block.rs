//! Blocks and the linear chain.

use crate::tx::{Transaction, Txid};
use crate::utxo::{UtxoError, UtxoSet};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Average spacing between blocks (the Bitcoin 10-minute target).
pub const BLOCK_INTERVAL_SECS: u64 = 600;

/// A block: height, timestamp, and its transactions (coinbase first, if any).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    pub height: u64,
    pub timestamp: u64,
    pub txs: Vec<Transaction>,
}

/// Chain-level validation failures.
#[derive(Debug)]
pub enum ChainError {
    /// Block height must be exactly `tip + 1`.
    BadHeight { expected: u64, got: u64 },
    /// Block timestamps must not decrease.
    TimestampRegression { tip: u64, got: u64 },
    /// A transaction failed UTXO validation.
    Tx(Txid, UtxoError),
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::BadHeight { expected, got } => {
                write!(f, "bad height: expected {expected}, got {got}")
            }
            ChainError::TimestampRegression { tip, got } => {
                write!(f, "timestamp regression: tip {tip}, got {got}")
            }
            ChainError::Tx(txid, e) => write!(f, "tx {txid}: {e}"),
        }
    }
}

impl std::error::Error for ChainError {}

/// A validated linear blockchain with UTXO tracking and per-address indexes.
#[derive(Clone, Debug, Default)]
pub struct Chain {
    blocks: Vec<Block>,
    utxo: UtxoSet,
    tx_index: HashMap<Txid, (u64, usize)>,
    /// Chronological list of transactions each address participates in.
    /// BTreeMap so iteration order is deterministic across runs.
    addr_index: BTreeMap<crate::address::Address, Vec<Txid>>,
}

impl Chain {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    pub fn utxo(&self) -> &UtxoSet {
        &self.utxo
    }

    pub fn num_transactions(&self) -> usize {
        self.tx_index.len()
    }

    pub fn num_addresses(&self) -> usize {
        self.addr_index.len()
    }

    /// Timestamp of the tip block (0 for an empty chain).
    pub fn tip_timestamp(&self) -> u64 {
        self.blocks.last().map_or(0, |b| b.timestamp)
    }

    /// Validate and append a block; all-or-nothing per transaction list.
    pub fn append(&mut self, block: Block) -> Result<(), ChainError> {
        if block.height != self.height() {
            return Err(ChainError::BadHeight {
                expected: self.height(),
                got: block.height,
            });
        }
        if block.timestamp < self.tip_timestamp() {
            return Err(ChainError::TimestampRegression {
                tip: self.tip_timestamp(),
                got: block.timestamp,
            });
        }
        // Validate against a scratch copy first so a bad mid-block tx cannot
        // leave the set half-applied.
        let mut scratch = self.utxo.clone();
        for tx in &block.txs {
            scratch.apply(tx).map_err(|e| ChainError::Tx(tx.txid, e))?;
        }
        self.utxo = scratch;
        let h = block.height;
        for (i, tx) in block.txs.iter().enumerate() {
            self.tx_index.insert(tx.txid, (h, i));
            let mut seen = std::collections::HashSet::new();
            for addr in tx.input_addresses().chain(tx.output_addresses()) {
                if seen.insert(addr) {
                    self.addr_index.entry(addr).or_default().push(tx.txid);
                }
            }
        }
        self.blocks.push(block);
        Ok(())
    }

    /// Look up a transaction by id.
    pub fn transaction(&self, txid: Txid) -> Option<&Transaction> {
        let &(h, i) = self.tx_index.get(&txid)?;
        Some(&self.blocks[h as usize].txs[i])
    }

    /// Chronological transactions an address participates in.
    pub fn address_history(&self, addr: crate::address::Address) -> &[Txid] {
        self.addr_index.get(&addr).map_or(&[], |v| v.as_slice())
    }

    /// Iterate `(address, txids)` over every address seen on-chain.
    pub fn addresses(&self) -> impl Iterator<Item = (crate::address::Address, &[Txid])> {
        self.addr_index.iter().map(|(&a, v)| (a, v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use crate::amount::Amount;
    use crate::tx::{OutPoint, TxIn, TxOut};

    fn coinbase(addr: u64, sats: u64, ts: u64, nonce: u64) -> Transaction {
        Transaction::new(
            vec![],
            vec![TxOut {
                address: Address(addr),
                value: Amount::from_sats(sats),
            }],
            ts,
            nonce,
        )
    }

    #[test]
    fn append_and_lookup() {
        let mut chain = Chain::new();
        let cb = coinbase(1, 50, 100, 0);
        let txid = cb.txid;
        chain
            .append(Block {
                height: 0,
                timestamp: 100,
                txs: vec![cb],
            })
            .unwrap();
        assert_eq!(chain.height(), 1);
        assert!(chain.transaction(txid).is_some());
        assert_eq!(chain.address_history(Address(1)), &[txid]);
    }

    #[test]
    fn height_must_be_sequential() {
        let mut chain = Chain::new();
        let res = chain.append(Block {
            height: 5,
            timestamp: 0,
            txs: vec![],
        });
        assert!(matches!(
            res,
            Err(ChainError::BadHeight {
                expected: 0,
                got: 5
            })
        ));
    }

    #[test]
    fn timestamp_cannot_regress() {
        let mut chain = Chain::new();
        chain
            .append(Block {
                height: 0,
                timestamp: 100,
                txs: vec![],
            })
            .unwrap();
        let res = chain.append(Block {
            height: 1,
            timestamp: 50,
            txs: vec![],
        });
        assert!(matches!(res, Err(ChainError::TimestampRegression { .. })));
    }

    #[test]
    fn bad_tx_rolls_back_whole_block() {
        let mut chain = Chain::new();
        let cb = coinbase(1, 50, 0, 0);
        let cb_txid = cb.txid;
        chain
            .append(Block {
                height: 0,
                timestamp: 0,
                txs: vec![cb],
            })
            .unwrap();
        // Second block: one valid spend then an invalid overspend.
        let good = Transaction::new(
            vec![TxIn {
                prevout: OutPoint {
                    txid: cb_txid,
                    vout: 0,
                },
                address: Address(1),
                value: Amount::from_sats(50),
            }],
            vec![TxOut {
                address: Address(2),
                value: Amount::from_sats(49),
            }],
            600,
            1,
        );
        let bad = Transaction::new(
            vec![TxIn {
                prevout: OutPoint {
                    txid: good.txid,
                    vout: 0,
                },
                address: Address(2),
                value: Amount::from_sats(49),
            }],
            vec![TxOut {
                address: Address(3),
                value: Amount::from_sats(99),
            }],
            600,
            2,
        );
        let res = chain.append(Block {
            height: 1,
            timestamp: 600,
            txs: vec![good, bad],
        });
        assert!(res.is_err());
        assert_eq!(chain.height(), 1);
        // Original UTXO untouched.
        assert!(chain.utxo().contains(&OutPoint {
            txid: cb_txid,
            vout: 0
        }));
    }

    #[test]
    fn address_history_is_chronological_and_deduped() {
        let mut chain = Chain::new();
        let cb = coinbase(1, 100, 0, 0);
        let cb_txid = cb.txid;
        chain
            .append(Block {
                height: 0,
                timestamp: 0,
                txs: vec![cb],
            })
            .unwrap();
        // Address 1 pays itself (appears on both sides — history should list
        // the tx once).
        let self_pay = Transaction::new(
            vec![TxIn {
                prevout: OutPoint {
                    txid: cb_txid,
                    vout: 0,
                },
                address: Address(1),
                value: Amount::from_sats(100),
            }],
            vec![TxOut {
                address: Address(1),
                value: Amount::from_sats(99),
            }],
            600,
            1,
        );
        let self_txid = self_pay.txid;
        chain
            .append(Block {
                height: 1,
                timestamp: 600,
                txs: vec![self_pay],
            })
            .unwrap();
        assert_eq!(chain.address_history(Address(1)), &[cb_txid, self_txid]);
    }

    #[test]
    fn unknown_address_has_empty_history() {
        let chain = Chain::new();
        assert!(chain.address_history(Address(42)).is_empty());
    }
}
