//! # btcsim — a deterministic Bitcoin UTXO blockchain simulator
//!
//! Stands in for the paper's 2.1M-address crawled dataset (see DESIGN.md
//! substitution table): behavior-driven actors emit transactions whose
//! *observable structure* — fan-in/fan-out shape, value distributions,
//! temporal cadence, change-address behavior — matches each of the four
//! labeled behavior categories (Table I): exchange, mining, gambling,
//! service.
//!
//! Pipeline: build a [`sim::SimConfig`], run a [`sim::Simulator`], then
//! extract a labeled [`dataset::Dataset`] of per-address chronological
//! transaction histories.
//!
//! ```
//! use btcsim::sim::{SimConfig, Simulator};
//! use btcsim::dataset::Dataset;
//!
//! let sim = Simulator::run_to_completion(SimConfig::tiny(42));
//! let dataset = Dataset::from_simulator(&sim, 2);
//! assert!(dataset.class_counts().iter().all(|&c| c > 0));
//! ```

pub mod actors;
pub mod address;
pub mod amount;
pub mod block;
pub mod cursor;
pub mod dataset;
pub mod dist;
pub mod mempool;
pub mod sim;
pub mod tx;
pub mod utxo;
pub mod wallet;

pub use address::{Address, Label};
pub use amount::Amount;
pub use block::{Block, Chain};
pub use cursor::BlockCursor;
pub use dataset::{AddressRecord, Dataset, TxView};
pub use mempool::Mempool;
pub use sim::{SimConfig, Simulator};
pub use tx::{OutPoint, Transaction, TxIn, TxOut, Txid};
pub use utxo::{UtxoEntry, UtxoError, UtxoSet};
