//! Property-based crash-safety tests: *no* corruption of the durable
//! artifacts — snapshot or journal, bit flips or truncations, at any
//! offset — may ever panic recovery. Every corrupted input must come back
//! as a clean success (quarantine + fallback + replay) or a descriptive
//! error; the absence of a panic is the property under test.
//!
//! Pristine snapshot + journal bytes are built once from a real follower
//! run; each case mutates its own private copies, so quarantine renames
//! and journal truncation never leak between cases.

use baclassifier::{BaClassifier, BacConfig, ModelArtifact};
use bstream::{scan_journal, Follower, FollowerConfig};
use btcsim::{Block, BlockCursor, SimConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Freshly initialized weights exported through the NNIO stream — a valid
/// fitted-state artifact without paying for `fit()`.
fn test_artifact() -> ModelArtifact {
    let cfg = BacConfig::fast();
    let clf = BaClassifier::new(cfg.clone());
    let path = std::env::temp_dir().join(format!(
        "corruption_artifact_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    clf.save_weights(&path).unwrap();
    let weights = numnet::read_matrices(&mut std::fs::File::open(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();
    ModelArtifact {
        config: cfg,
        weights,
    }
}

struct Pristine {
    artifact: ModelArtifact,
    snapshot: Vec<u8>,
    journal: Vec<u8>,
}

/// One real follower run with a mid-stream snapshot and a journal tail:
/// the bytes every corruption case starts from.
fn pristine() -> &'static Pristine {
    static PRISTINE: OnceLock<Pristine> = OnceLock::new();
    PRISTINE.get_or_init(|| {
        let artifact = test_artifact();
        let dir = std::env::temp_dir();
        let snap = dir.join(format!("corruption_pristine_{}.bsnap", std::process::id()));
        let journal = dir.join(format!("corruption_pristine_{}.bjrnl", std::process::id()));
        let cfg = FollowerConfig {
            snapshot_path: Some(snap.clone()),
            journal_path: Some(journal.clone()),
            snapshot_every: 9,
            snapshot_generations: 1,
            ..FollowerConfig::default()
        };
        // recover() on a clean slate = fresh follower with the journal
        // attached for write-ahead appends.
        let mut follower = Follower::recover(&artifact, cfg).unwrap().follower;
        let blocks: Vec<Block> = BlockCursor::new(SimConfig {
            blocks: 14,
            ..SimConfig::tiny(83)
        })
        .collect();
        for b in &blocks {
            follower.step(b);
        }
        drop(follower);
        let snapshot_bytes = std::fs::read(&snap).unwrap();
        let journal_bytes = std::fs::read(&journal).unwrap();
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&journal).ok();
        assert!(!snapshot_bytes.is_empty() && !journal_bytes.is_empty());
        Pristine {
            artifact,
            snapshot: snapshot_bytes,
            journal: journal_bytes,
        }
    })
}

/// A private scratch directory per case: quarantine renames and tail
/// truncation must not contaminate the next case's inputs.
fn case_dir() -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("corruption_case_{}_{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn flip_bit(bytes: &mut [u8], bit: u64) {
    if bytes.is_empty() {
        return;
    }
    let at = (bit % (bytes.len() as u64 * 8)) as usize;
    bytes[at / 8] ^= 1 << (at % 8);
}

fn truncate(bytes: &mut Vec<u8>, cut: u64) {
    if bytes.is_empty() {
        return;
    }
    bytes.truncate((cut % bytes.len() as u64) as usize);
}

/// Recovery over the (possibly corrupted) snapshot + journal pair must
/// not panic; scanning the journal directly must not either. The result
/// values are irrelevant — both Ok and Err are acceptable outcomes.
fn recovery_survives(snapshot: Vec<u8>, journal: Vec<u8>) {
    let dir = case_dir();
    let snap_path = dir.join("state.bsnap");
    let journal_path = dir.join("state.bjrnl");
    std::fs::write(&snap_path, snapshot).unwrap();
    std::fs::write(&journal_path, journal).unwrap();

    let _ = scan_journal(&journal_path);
    let cfg = FollowerConfig {
        snapshot_path: Some(snap_path),
        journal_path: Some(journal_path),
        snapshot_generations: 1,
        ..FollowerConfig::default()
    };
    match Follower::recover(&pristine().artifact, cfg) {
        Ok(recovery) => {
            // Whatever survived must be a follower in a usable state.
            assert!(recovery.follower.next_height() > 0 || recovery.follower.num_tracked() == 0);
        }
        Err(e) => {
            // Errors must be descriptive, never silent.
            assert!(!e.to_string().is_empty());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // A single flipped bit anywhere in either artifact: the checksum (or
    // parser) must catch it and recovery must degrade gracefully.
    #[test]
    fn bit_flips_never_panic_recovery(
        snap_bit in any::<u64>(),
        journal_bit in any::<u64>(),
        corrupt_snapshot in any::<bool>(),
        corrupt_journal in any::<bool>(),
    ) {
        let p = pristine();
        let mut snapshot = p.snapshot.clone();
        let mut journal = p.journal.clone();
        if corrupt_snapshot {
            flip_bit(&mut snapshot, snap_bit);
        }
        if corrupt_journal {
            flip_bit(&mut journal, journal_bit);
        }
        recovery_survives(snapshot, journal);
    }

    // Truncation at any byte — torn writes, partial copies, full loss of
    // either file: the journal heals its tail, the snapshot quarantines.
    #[test]
    fn truncations_never_panic_recovery(
        snap_cut in any::<u64>(),
        journal_cut in any::<u64>(),
    ) {
        let p = pristine();
        let mut snapshot = p.snapshot.clone();
        let mut journal = p.journal.clone();
        truncate(&mut snapshot, snap_cut);
        truncate(&mut journal, journal_cut);
        recovery_survives(snapshot, journal);
    }

    // Both at once, with extra garbage appended — the worst disk a crash
    // can leave behind.
    #[test]
    fn combined_corruption_never_panics_recovery(
        snap_bit in any::<u64>(),
        journal_cut in any::<u64>(),
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let p = pristine();
        let mut snapshot = p.snapshot.clone();
        let mut journal = p.journal.clone();
        flip_bit(&mut snapshot, snap_bit);
        truncate(&mut journal, journal_cut);
        journal.extend_from_slice(&garbage);
        snapshot.extend_from_slice(&garbage);
        recovery_survives(snapshot, journal);
    }
}
