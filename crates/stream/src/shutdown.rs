//! Cooperative SIGINT shutdown — re-exported from `baserve::shutdown`.
//!
//! The flag originally lived here; it moved down to `baserve` so the
//! serving daemons and the `banet` accept loop can share one process-wide
//! shutdown signal without `baserve` depending on this crate. Everything
//! that imported `bstream::shutdown_requested` keeps working unchanged —
//! and keeps observing the *same* flag as the serve-side pollers.

pub use baserve::shutdown::{install_sigint_handler, request_shutdown, shutdown_requested};
