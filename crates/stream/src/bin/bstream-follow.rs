//! Follow a live simulated chain, keeping a continuously updated label
//! table, with crash-safe journaling, periodic snapshots, and progress
//! reporting.
//!
//! ```text
//! bstream-follow [--seed 42] [--blocks 200] [--users 40] [--capacity 16]
//!                [--artifact model.bart] [--min-txs 3] [--reclass-every 1]
//!                [--snapshot follower.bsnap] [--snapshot-every 50]
//!                [--generations 2] [--journal follower.bjrnl]
//!                [--journal-sync-every 1] [--stall-timeout-ms 10000]
//!                [--progress-every 25] [--reclass-threads 0]
//!                [--reclass-batch 128]
//! ```
//!
//! `--reclass-threads` sizes the batched reclassification stage (0 = all
//! cores); any value produces byte-identical labels and embeddings.
//! `--reclass-batch` caps addresses per re-embed micro-batch.
//!
//! Without `--artifact`, a quick model is fitted on a batch dataset built
//! from the same simulation config before following starts. With
//! `--snapshot`/`--journal`, startup goes through `Follower::recover`:
//! the newest valid snapshot generation is restored (corrupt ones are
//! quarantined), the journal tail is replayed, and following resumes at
//! the recovered height — killing this process at any point loses no
//! blocks. SIGINT (Ctrl-C) exits gracefully: the journal is flushed and a
//! final snapshot written before the process ends. A producer that goes
//! silent for `--stall-timeout-ms` is reported as a stall error instead
//! of hanging the follower forever.

use baclassifier::{BaClassifier, BacConfig, ModelArtifact};
use baserve::cli::{flag_parsed, flag_value};
use bstream::{BlockFeed, Follower, FollowerConfig};
use btcsim::{Dataset, Label, SimConfig, Simulator};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = flag_parsed(&args, "--seed", 42u64);
    let blocks = flag_parsed(&args, "--blocks", 200u64);
    let users = flag_parsed(&args, "--users", 40usize);
    let capacity = flag_parsed(&args, "--capacity", 16usize);
    let progress_every = flag_parsed(&args, "--progress-every", 25u64);
    let stall_timeout = Duration::from_millis(flag_parsed(&args, "--stall-timeout-ms", 10_000u64));

    let mut sim_cfg = SimConfig {
        blocks,
        ..SimConfig::tiny(seed)
    };
    sim_cfg.retail.num_users = users;

    let artifact = match flag_value(&args, "--artifact") {
        Some(path) => match ModelArtifact::load(std::path::Path::new(&path)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: could not load artifact {path}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            eprintln!("[bstream-follow] no --artifact; fitting a fast model (seed {seed})…");
            let sim = Simulator::run_to_completion(sim_cfg.clone());
            let dataset = Dataset::from_simulator(&sim, 3);
            let mut clf = BaClassifier::new(BacConfig::fast());
            let t = Instant::now();
            clf.fit(&dataset);
            eprintln!(
                "[bstream-follow] fitted on {} addresses in {:.1}s",
                dataset.len(),
                t.elapsed().as_secs_f64()
            );
            clf.to_artifact().expect("artifact from fitted classifier")
        }
    };

    let snapshot_path = flag_value(&args, "--snapshot").map(PathBuf::from);
    let follower_cfg = FollowerConfig {
        min_txs: flag_parsed(&args, "--min-txs", 3usize),
        reclass_every: flag_parsed(&args, "--reclass-every", 1u64),
        snapshot_every: flag_parsed(&args, "--snapshot-every", 0u64),
        snapshot_path: snapshot_path.clone(),
        tracked: None,
        shard: None,
        journal_path: flag_value(&args, "--journal").map(PathBuf::from),
        journal_sync_every: flag_parsed(&args, "--journal-sync-every", 1u64),
        snapshot_generations: flag_parsed(&args, "--generations", 2usize),
        reclass_threads: flag_parsed(&args, "--reclass-threads", 0usize),
        reclass_batch: flag_parsed(&args, "--reclass-batch", 128usize),
    };

    // recover() handles every startup shape: fresh state, snapshot-only
    // restore, journal replay after a crash, and corrupt-snapshot
    // fallback with quarantine.
    let mut follower = match Follower::recover(&artifact, follower_cfg) {
        Ok(recovery) => {
            for (path, reason) in &recovery.quarantined {
                eprintln!(
                    "[bstream-follow] quarantined snapshot {}: {reason}",
                    path.display()
                );
            }
            if let Some(torn) = &recovery.journal_torn {
                eprintln!("[bstream-follow] journal tail truncated: {torn}");
            }
            if recovery.restored_generation.is_some() || recovery.replayed_blocks > 0 {
                eprintln!(
                    "[bstream-follow] recovered {} addresses at height {} \
                     (generation {:?}, {} blocks replayed from journal)",
                    recovery.follower.num_tracked(),
                    recovery.follower.next_height(),
                    recovery.restored_generation,
                    recovery.replayed_blocks
                );
            }
            recovery.follower
        }
        Err(e) => {
            eprintln!("error: recovery failed: {e}");
            std::process::exit(1);
        }
    };

    bstream::install_sigint_handler();
    let start_height = follower.next_height();
    let feed = BlockFeed::follow_sim(sim_cfg, start_height, capacity);
    eprintln!(
        "[bstream-follow] following {} blocks from height {start_height} (capacity {capacity})",
        blocks + 1
    );

    let t = Instant::now();
    let poll = stall_timeout
        .min(Duration::from_millis(250))
        .max(Duration::from_millis(1));
    let mut silent_for = Duration::ZERO;
    let mut stalled = false;
    loop {
        if bstream::shutdown_requested() {
            eprintln!("[bstream-follow] SIGINT: flushing journal and snapshotting…");
            break;
        }
        // Poll in short slices so SIGINT is honored promptly; accumulate
        // silence toward the stall timeout.
        match feed.recv_timeout(poll) {
            Ok(block) => {
                silent_for = Duration::ZERO;
                follower.step(&block);
                feed.watermark().record_processed(block.height);
                let lag = feed.watermark().lag();
                follower.metrics_mut().record_lag(lag);
                if progress_every > 0 && follower.next_height() % progress_every == 0 {
                    eprintln!(
                        "[bstream-follow] height {:>5}  lag {:>3}  tracked {:>5}  labeled {:>5}",
                        block.height,
                        lag,
                        follower.num_tracked(),
                        follower.labels().len()
                    );
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                silent_for += poll;
                if silent_for >= stall_timeout {
                    eprintln!(
                        "error: {}",
                        bstream::FeedStalled {
                            produced: feed.watermark().produced(),
                            stalled_for: silent_for,
                        }
                    );
                    stalled = true;
                    break;
                }
            }
        }
    }

    // Graceful teardown on every exit path (EOF, SIGINT, stall): bring
    // labels current, persist a final snapshot, and flush the journal so
    // nothing ingested is lost.
    follower.reclassify_dirty();
    if let Some(path) = &snapshot_path {
        if let Err(e) = follower.snapshot_to(path) {
            eprintln!("error: final snapshot failed: {e}");
        } else {
            eprintln!("[bstream-follow] snapshot written to {}", path.display());
        }
    }
    if let Err(e) = follower.sync_journal() {
        eprintln!("error: final journal sync failed: {e}");
    }

    let mut histogram = [0usize; 4];
    for label in follower.labels().values() {
        histogram[label.index()] += 1;
    }
    eprintln!(
        "[bstream-follow] done in {:.1}s: {}",
        t.elapsed().as_secs_f64(),
        Label::ALL
            .iter()
            .map(|l| format!("{} {}", l.name(), histogram[l.index()]))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("{}", follower.metrics().to_json());
    if stalled {
        std::process::exit(3);
    }
}
