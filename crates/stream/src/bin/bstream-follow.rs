//! Follow a live simulated chain, keeping a continuously updated label
//! table, with periodic snapshots and progress reporting.
//!
//! ```text
//! bstream-follow [--seed 42] [--blocks 200] [--users 40] [--capacity 16]
//!                [--artifact model.bart] [--min-txs 3] [--reclass-every 1]
//!                [--snapshot follower.bsnap] [--snapshot-every 50]
//!                [--progress-every 25]
//! ```
//!
//! Without `--artifact`, a quick model is fitted on a batch dataset built
//! from the same simulation config before following starts. When the
//! snapshot file already exists, the follower restores from it and resumes
//! at the checkpoint height instead of starting from genesis.

use baclassifier::{BaClassifier, BacConfig, ModelArtifact};
use baserve::cli::{flag_parsed, flag_value};
use bstream::{BlockFeed, Follower, FollowerConfig};
use btcsim::{Dataset, Label, SimConfig, Simulator};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = flag_parsed(&args, "--seed", 42u64);
    let blocks = flag_parsed(&args, "--blocks", 200u64);
    let users = flag_parsed(&args, "--users", 40usize);
    let capacity = flag_parsed(&args, "--capacity", 16usize);
    let progress_every = flag_parsed(&args, "--progress-every", 25u64);

    let mut sim_cfg = SimConfig {
        blocks,
        ..SimConfig::tiny(seed)
    };
    sim_cfg.retail.num_users = users;

    let artifact = match flag_value(&args, "--artifact") {
        Some(path) => match ModelArtifact::load(std::path::Path::new(&path)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: could not load artifact {path}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            eprintln!("[bstream-follow] no --artifact; fitting a fast model (seed {seed})…");
            let sim = Simulator::run_to_completion(sim_cfg.clone());
            let dataset = Dataset::from_simulator(&sim, 3);
            let mut clf = BaClassifier::new(BacConfig::fast());
            let t = Instant::now();
            clf.fit(&dataset);
            eprintln!(
                "[bstream-follow] fitted on {} addresses in {:.1}s",
                dataset.len(),
                t.elapsed().as_secs_f64()
            );
            clf.to_artifact().expect("artifact from fitted classifier")
        }
    };

    let snapshot_path = flag_value(&args, "--snapshot").map(PathBuf::from);
    let follower_cfg = FollowerConfig {
        min_txs: flag_parsed(&args, "--min-txs", 3usize),
        reclass_every: flag_parsed(&args, "--reclass-every", 1u64),
        snapshot_every: flag_parsed(&args, "--snapshot-every", 0u64),
        snapshot_path: snapshot_path.clone(),
        tracked: None,
        shard: None,
    };

    let mut follower = match &snapshot_path {
        Some(path) if path.exists() => {
            match Follower::restore(&artifact, follower_cfg.clone(), path) {
                Ok(f) => {
                    eprintln!(
                        "[bstream-follow] restored {} addresses at height {} from {}",
                        f.num_tracked(),
                        f.next_height(),
                        path.display()
                    );
                    f
                }
                Err(e) => {
                    eprintln!("error: could not restore snapshot {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        _ => Follower::new(&artifact, follower_cfg).expect("config/weights mismatch"),
    };

    let start_height = follower.next_height();
    let feed = BlockFeed::follow_sim(sim_cfg, start_height, capacity);
    eprintln!(
        "[bstream-follow] following {} blocks from height {start_height} (capacity {capacity})",
        blocks + 1
    );

    let t = Instant::now();
    while let Some(block) = feed.recv() {
        follower.step(&block);
        feed.watermark().record_processed(block.height);
        let lag = feed.watermark().lag();
        follower.metrics_mut().record_lag(lag);
        if progress_every > 0 && follower.next_height() % progress_every == 0 {
            eprintln!(
                "[bstream-follow] height {:>5}  lag {:>3}  tracked {:>5}  labeled {:>5}",
                block.height,
                lag,
                follower.num_tracked(),
                follower.labels().len()
            );
        }
    }
    follower.reclassify_dirty();
    if let Some(path) = &snapshot_path {
        if let Err(e) = follower.snapshot_to(path) {
            eprintln!("error: final snapshot failed: {e}");
        } else {
            eprintln!("[bstream-follow] snapshot written to {}", path.display());
        }
    }

    let mut histogram = [0usize; 4];
    for label in follower.labels().values() {
        histogram[label.index()] += 1;
    }
    eprintln!(
        "[bstream-follow] done in {:.1}s: {}",
        t.elapsed().as_secs_f64(),
        Label::ALL
            .iter()
            .map(|l| format!("{} {}", l.name(), histogram[l.index()]))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("{}", follower.metrics().to_json());
}
