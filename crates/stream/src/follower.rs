//! The chain follower: per-address incremental state and live
//! reclassification.
//!
//! The follower consumes blocks in height order and maintains, for every
//! tracked address, an append-only transaction history plus the incremental
//! derived state from [`baclassifier::construction::incremental`] — slice
//! graphs, feature aggregates, and a cache of per-slice GFN embeddings.
//! Applying a block only touches the addresses that transacted in it; no
//! state is ever rebuilt from scratch. Dirty addresses are pushed through
//! the classifier head on a configurable cadence, producing a continuously
//! updated label table.
//!
//! Label equivalence with the batch pipeline is structural: histories are
//! accumulated with exactly the dedup rule of `Chain::append`'s address
//! index, graphs are maintained by the byte-identical `apply_tx` path, and
//! only dirty slices are re-embedded before the cached sequence (capped to
//! the model's `max_slices` most recent entries, as in
//! `BaClassifier::embed_record`) is handed to `classify_embeddings`.

use crate::feed::BlockFeed;
use crate::journal::BlockJournal;
use crate::metrics::StreamMetrics;
use baclassifier::config::resolve_threads;
use baclassifier::construction::{AddressGraph, FocusAggregates, IncrementalGraphs};
use baclassifier::{ArtifactError, BaClassifier, ModelArtifact, ShardAssignment};
use baserve::Engine;
use btcsim::{Address, Block, Label, TxView};
use numnet::Matrix;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Follower policy knobs.
#[derive(Clone, Debug)]
pub struct FollowerConfig {
    /// Addresses with fewer transactions than this are tracked but not
    /// classified (mirrors the dataset extraction threshold).
    pub min_txs: usize,
    /// Reclassify dirty addresses every this many blocks (0 disables the
    /// periodic pass; a final pass still runs when a feed drains).
    pub reclass_every: u64,
    /// Write a snapshot every this many blocks (0 disables).
    pub snapshot_every: u64,
    /// Where periodic snapshots go; required when `snapshot_every > 0`.
    pub snapshot_path: Option<PathBuf>,
    /// Restrict tracking to this address set (`None` tracks every address
    /// seen on chain).
    pub tracked: Option<BTreeSet<Address>>,
    /// Restrict tracking to the addresses owned by one shard of a
    /// deterministic [`ShardAssignment`] (`None` behaves as the trivial
    /// 1-shard layout). Composes with `tracked`: an address must pass both
    /// filters. The assignment is persisted in snapshots so a restored
    /// follower can never silently adopt state from a different layout.
    pub shard: Option<ShardAssignment>,
    /// Where the write-ahead block journal lives (`None` disables
    /// journaling). With a journal, every block is appended — checksummed
    /// — before it is applied, so [`Follower::recover`] can replay
    /// everything since the last snapshot after a crash.
    pub journal_path: Option<PathBuf>,
    /// fsync the journal every this many appended frames: `1` makes every
    /// block durable before it is applied (crash loses nothing), `N`
    /// batches fsyncs, `0` leaves syncing to the OS.
    pub journal_sync_every: u64,
    /// How many snapshot generations to retain (`base`, `base.g1`, …).
    /// Older generations are fallbacks when the newest snapshot is
    /// corrupt; at least 1 is always kept.
    pub snapshot_generations: usize,
    /// Worker threads for the batched reclassification stage (0 = auto,
    /// all cores; overridable via `BAC_THREADS`). Labels and embeddings
    /// are byte-identical at any thread count — the stage runs on the
    /// deterministic replica machinery of `baclassifier::parallel`.
    pub reclass_threads: usize,
    /// Maximum addresses per reclassification micro-batch (0 = one batch
    /// for the whole dirty set). Smaller batches bound peak memory for the
    /// gathered slice graphs; the batch split never changes any output.
    pub reclass_batch: usize,
}

impl Default for FollowerConfig {
    fn default() -> Self {
        Self {
            min_txs: 3,
            reclass_every: 1,
            snapshot_every: 0,
            snapshot_path: None,
            tracked: None,
            shard: None,
            journal_path: None,
            journal_sync_every: 1,
            snapshot_generations: 2,
            reclass_threads: 0,
            reclass_batch: 128,
        }
    }
}

impl FollowerConfig {
    /// Whether this follower tracks `addr`: it must be owned by the
    /// configured shard (if any) and appear in the tracked set (if any).
    pub fn tracks(&self, addr: Address) -> bool {
        if let Some(shard) = &self.shard {
            if !shard.owns(addr) {
                return false;
            }
        }
        match &self.tracked {
            Some(tracked) => tracked.contains(&addr),
            None => true,
        }
    }
}

/// Everything the follower keeps for one address.
pub(crate) struct AddressState {
    /// Append-only transaction history, in chain order.
    pub(crate) history: Vec<TxView>,
    /// Incrementally maintained slice graphs.
    pub(crate) inc: IncrementalGraphs,
    /// Running scalar aggregates (cheap monitoring signal).
    pub(crate) agg: FocusAggregates,
    /// Per-slice embeddings; entries `< embeds_clean` match the current
    /// derived graphs, the rest are stale and re-embedded on demand.
    pub(crate) embeds: Vec<Matrix>,
    pub(crate) embeds_clean: usize,
    /// Set when the history grew since the last classification.
    pub(crate) dirty: bool,
    /// Label margin of the last classification (winning logit minus
    /// runner-up) — small means near a label boundary. Drives priority
    /// scheduling: boundary-adjacent addresses re-embed first. `None`
    /// until first classified (highest priority of all).
    pub(crate) margin: Option<f32>,
}

impl AddressState {
    fn new(focus: Address, cfg: baclassifier::ConstructionConfig) -> Self {
        Self {
            history: Vec::new(),
            inc: IncrementalGraphs::new(focus, cfg),
            agg: FocusAggregates::default(),
            embeds: Vec::new(),
            embeds_clean: 0,
            dirty: false,
            margin: None,
        }
    }

    pub(crate) fn apply(&mut self, focus: Address, view: &TxView) {
        self.history.push(view.clone());
        self.inc.apply_tx(view);
        self.agg.apply_tx(focus, view);
        // The newest slice mutated; any embedding cached for it is stale.
        self.embeds_clean = self
            .embeds_clean
            .min(self.inc.num_slices().saturating_sub(1));
        self.dirty = true;
    }
}

/// A chain follower with live reclassification. See the module docs.
pub struct Follower {
    pub(crate) cfg: FollowerConfig,
    pub(crate) clf: BaClassifier,
    engine: Option<Arc<Engine>>,
    pub(crate) states: BTreeMap<Address, AddressState>,
    pub(crate) labels: BTreeMap<Address, Label>,
    /// Height the next ingested block must have.
    pub(crate) next_height: u64,
    pub(crate) metrics: StreamMetrics,
    /// Write-ahead journal; blocks are appended here before being applied.
    pub(crate) journal: Option<BlockJournal>,
}

impl Follower {
    /// Build a follower around trained weights.
    pub fn new(artifact: &ModelArtifact, cfg: FollowerConfig) -> Result<Self, ArtifactError> {
        Ok(Self {
            cfg,
            clf: BaClassifier::from_artifact(artifact)?,
            engine: None,
            states: BTreeMap::new(),
            labels: BTreeMap::new(),
            next_height: 0,
            metrics: StreamMetrics::default(),
            journal: None,
        })
    }

    /// Attach a serving engine: every per-address state change issues a
    /// cache invalidation so concurrent query traffic can never observe an
    /// embedding computed from a shorter history.
    pub fn attach_engine(&mut self, engine: Arc<Engine>) {
        self.engine = Some(engine);
    }

    /// Attach an open write-ahead journal: [`Follower::step`] appends each
    /// new block before applying it. [`Follower::recover`] does this
    /// automatically when the config names a `journal_path`.
    pub fn attach_journal(&mut self, journal: BlockJournal) {
        self.journal = Some(journal);
    }

    pub fn has_journal(&self) -> bool {
        self.journal.is_some()
    }

    /// Force everything appended to the journal so far to stable storage.
    pub fn sync_journal(&mut self) -> std::io::Result<()> {
        match &mut self.journal {
            Some(j) => {
                let r = j.sync();
                if r.is_ok() {
                    self.metrics.journal_fsyncs += 1;
                }
                r
            }
            None => Ok(()),
        }
    }

    /// Mark every tracked address dirty so the next
    /// [`Follower::reclassify_dirty`] re-embeds and re-labels all of them.
    /// Recovery identity checks use this to materialize the full embedding
    /// table (restore rebuilds embeddings lazily) before comparing against
    /// an uninterrupted run byte for byte.
    pub fn mark_all_dirty(&mut self) {
        for state in self.states.values_mut() {
            state.dirty = true;
        }
    }

    pub fn config(&self) -> &FollowerConfig {
        &self.cfg
    }

    pub fn classifier(&self) -> &BaClassifier {
        &self.clf
    }

    /// Height the next block is expected at (= blocks ingested so far).
    pub fn next_height(&self) -> u64 {
        self.next_height
    }

    /// The live label table.
    pub fn labels(&self) -> &BTreeMap<Address, Label> {
        &self.labels
    }

    pub fn metrics(&self) -> &StreamMetrics {
        &self.metrics
    }

    /// Mutable metrics access for drivers that record their own samples
    /// (e.g. lag, when running the recv loop by hand instead of [`Follower::run`]).
    pub fn metrics_mut(&mut self) -> &mut StreamMetrics {
        &mut self.metrics
    }

    /// Number of addresses with tracked state.
    pub fn num_tracked(&self) -> usize {
        self.states.len()
    }

    /// History length of one tracked address (0 when untracked).
    pub fn history_len(&self, addr: Address) -> usize {
        self.states.get(&addr).map_or(0, |s| s.history.len())
    }

    /// Running feature aggregates of one tracked address.
    pub fn aggregates(&self, addr: Address) -> Option<FocusAggregates> {
        self.states.get(&addr).map(|s| s.agg)
    }

    /// Cached per-slice embeddings of one tracked address. Entries are
    /// current as of the last reclassification (stale tails are re-embedded
    /// there, not here); call [`Follower::reclassify_dirty`] first when the
    /// bytes must reflect the tip.
    pub fn embeddings(&self, addr: Address) -> Option<&[Matrix]> {
        self.states.get(&addr).map(|s| s.embeds.as_slice())
    }

    /// History lengths of every tracked address — cheap identity probe for
    /// comparing a sharded union against an unsharded follower.
    pub fn history_lens(&self) -> BTreeMap<Address, usize> {
        self.states
            .iter()
            .map(|(a, s)| (*a, s.history.len()))
            .collect()
    }

    /// Clone out the full per-address embedding table (current as of the
    /// last reclassification). Used by shard workers to ship their slice of
    /// the state across a thread boundary for merged reporting.
    pub fn export_embeddings(&self) -> BTreeMap<Address, Vec<Matrix>> {
        self.states
            .iter()
            .map(|(a, s)| (*a, s.embeds.clone()))
            .collect()
    }

    /// Apply one block to per-address state. Blocks must arrive in height
    /// order; blocks below `next_height` are skipped silently so a resumed
    /// follower can overlap with an already-ingested prefix.
    pub fn ingest_block(&mut self, block: &Block) {
        if block.height < self.next_height {
            return;
        }
        assert_eq!(
            block.height, self.next_height,
            "blocks must arrive in height order"
        );
        let start = Instant::now();
        let construction = self.clf.config().construction.clone();
        for tx in &block.txs {
            let view = TxView {
                txid: tx.txid,
                timestamp: tx.timestamp,
                inputs: tx.inputs.iter().map(|i| (i.address, i.value)).collect(),
                outputs: tx.outputs.iter().map(|o| (o.address, o.value)).collect(),
            };
            // Same dedup rule as Chain::append's address index: each address
            // joins the tx history once, on first appearance, inputs before
            // outputs — histories stay byte-identical to Dataset::from_chain.
            let mut seen = HashSet::new();
            for addr in tx
                .inputs
                .iter()
                .map(|i| i.address)
                .chain(tx.outputs.iter().map(|o| o.address))
            {
                if !seen.insert(addr) {
                    continue;
                }
                if !self.cfg.tracks(addr) {
                    continue;
                }
                let state = self
                    .states
                    .entry(addr)
                    .or_insert_with(|| AddressState::new(addr, construction.clone()));
                if state.dirty {
                    // Already awaiting reclassification: this flip coalesces
                    // into the one re-embed the next cadence tick performs.
                    self.metrics.coalesced_flips += 1;
                }
                state.apply(addr, &view);
                self.metrics.tx_applications += 1;
                if let Some(engine) = &self.engine {
                    engine.invalidate_address(addr);
                    self.metrics.invalidations += 1;
                }
            }
            self.metrics.txs_ingested += 1;
        }
        self.next_height = block.height + 1;
        self.metrics.blocks_ingested += 1;
        self.metrics.ingest_time += start.elapsed();
    }

    /// Install a restored address: replay its history through the
    /// incremental path, leaving it clean (snapshots are taken at
    /// fully-classified points).
    pub(crate) fn restore_address(
        &mut self,
        addr: Address,
        history: Vec<TxView>,
        label: Option<Label>,
    ) {
        let mut state = AddressState::new(addr, self.clf.config().construction.clone());
        for view in &history {
            state.inc.apply_tx(view);
            state.agg.apply_tx(addr, view);
        }
        state.history = history;
        self.states.insert(addr, state);
        if let Some(label) = label {
            self.labels.insert(addr, label);
        }
    }

    /// Re-derive, re-embed, and reclassify every dirty address with at
    /// least `min_txs` transactions. Returns how many were reclassified.
    ///
    /// The dirty set is processed as micro-batches on the deterministic
    /// replica machinery of `baclassifier::parallel`: every flip of an
    /// address since the last tick coalesces into one unit of work, the
    /// stale slice graphs of a whole batch are embedded together across
    /// `reclass_threads` replica workers, and the capped embedding
    /// sequences go through `classify_embeddings_batch` — each head
    /// replica runs its chunk as one ragged-batch LSTM forward pass
    /// (one fused-gate matmul per timestep over the still-active
    /// sequences). Labels and embeddings are byte-identical to the
    /// per-address serial path at any thread count. Addresses are queued boundary-first: the smaller an
    /// address's last label margin, the earlier it re-embeds (unclassified
    /// addresses come first of all).
    ///
    /// Addresses still under the `min_txs` threshold keep their dirty bit
    /// — they are deferred, not dropped, so a later cadence (or a restore
    /// with a lowered threshold) picks them up.
    pub fn reclassify_dirty(&mut self) -> usize {
        let start = Instant::now();
        let mut queue: Vec<(u64, Address)> = Vec::new();
        for (addr, state) in &self.states {
            if !state.dirty {
                continue;
            }
            if state.history.len() < self.cfg.min_txs {
                // Deferred, not dropped: the dirty bit survives the skip.
                continue;
            }
            queue.push((priority_key(state.margin), *addr));
        }
        // Smallest key first: never-classified, then ascending margin; the
        // address id breaks ties so the order is fully deterministic.
        queue.sort_unstable();
        self.metrics.priority_depth = queue.len() as u64;
        let threads = resolve_threads(self.cfg.reclass_threads);
        let batch_cap = if self.cfg.reclass_batch == 0 {
            queue.len().max(1)
        } else {
            self.cfg.reclass_batch
        };
        let max_slices = self.clf.config().model.max_slices.max(1);
        let mut reclassified = 0;
        for chunk in queue.chunks(batch_cap) {
            reclassified += self.reclassify_batch(chunk, threads, max_slices);
        }
        self.metrics.reclass_time += start.elapsed();
        reclassified
    }

    /// One micro-batch of the batched reclassification stage: gather every
    /// member's stale slice graphs, embed them together on the replica
    /// pool, scatter the embeddings back, then classify the capped
    /// sequences together the same way.
    fn reclassify_batch(
        &mut self,
        batch: &[(u64, Address)],
        threads: usize,
        max_slices: usize,
    ) -> usize {
        if batch.is_empty() {
            return 0;
        }
        let t0 = Instant::now();
        // Gather. Multiple flips of an address since the last tick appear
        // here once: the dirty bit is level-triggered, and the stale range
        // `embeds_clean..` covers every slice any of those flips touched.
        let mut graphs: Vec<AddressGraph> = Vec::new();
        let mut stale_counts: Vec<usize> = Vec::with_capacity(batch.len());
        for &(_, addr) in batch {
            let state = self.states.get_mut(&addr).expect("dirty address tracked");
            state.dirty = false;
            let all = state.inc.graphs();
            let stale = &all[state.embeds_clean..];
            stale_counts.push(stale.len());
            graphs.extend_from_slice(stale);
        }
        let total_slices = graphs.len() as u64;

        // Embed the whole batch across the replica workers, then scatter
        // the results back in gather order and cut the classify sequences.
        let mut embedded = self.clf.embed_graphs(&graphs, threads).into_iter();
        let mut seqs: Vec<Vec<Matrix>> = Vec::with_capacity(batch.len());
        for (&(_, addr), &n) in batch.iter().zip(&stale_counts) {
            let state = self.states.get_mut(&addr).expect("dirty address tracked");
            state.embeds.truncate(state.embeds_clean);
            state.embeds.extend(embedded.by_ref().take(n));
            state.embeds_clean = state.embeds.len();
            let seq_start = state.embeds.len().saturating_sub(max_slices);
            seqs.push(state.embeds[seq_start..].to_vec());
        }

        // Classify through the head replicas and install labels + margins.
        let labeled = self
            .clf
            .classify_embeddings_batch(&seqs, threads)
            .expect("non-empty sequences on a fitted classifier");
        for (&(_, addr), (label, margin)) in batch.iter().zip(labeled) {
            let state = self.states.get_mut(&addr).expect("dirty address tracked");
            state.margin = Some(margin);
            let prev = self.labels.insert(addr, label);
            if prev.is_some() && prev != Some(label) {
                self.metrics.label_flips += 1;
            }
        }
        self.metrics
            .record_reclass_batch(batch.len() as u64, total_slices);
        // Per-address latency samples are the amortized share of the batch
        // — the number that matters for follow throughput.
        let per = t0.elapsed() / batch.len() as u32;
        for _ in 0..batch.len() {
            self.metrics.record_reclass(per);
        }
        batch.len()
    }

    /// Append a new block to the write-ahead journal (if attached).
    /// Already-seen heights are not re-journaled, so overlapping replays
    /// don't duplicate frames. Failures are counted and reported but do
    /// not stop ingestion — durability degrades, availability doesn't.
    fn journal_block(&mut self, block: &Block) {
        let Some(journal) = &mut self.journal else {
            return;
        };
        if block.height < self.next_height {
            return;
        }
        match journal.append(block) {
            Ok((bytes, synced)) => {
                self.metrics.journal_frames += 1;
                self.metrics.journal_bytes += bytes;
                if synced {
                    self.metrics.journal_fsyncs += 1;
                }
            }
            Err(e) => {
                self.metrics.journal_errors += 1;
                eprintln!(
                    "bstream: journal append for block {} failed: {e}",
                    block.height
                );
            }
        }
    }

    /// Drop journal frames below the minimum resume height across every
    /// retained snapshot generation — frames an eventual fallback to the
    /// *oldest* generation would still need must survive compaction.
    fn compact_journal(&mut self) {
        if self.journal.is_none() {
            return;
        }
        let Some(base) = self.cfg.snapshot_path.clone() else {
            return;
        };
        let mut floor = None;
        for k in 0..self.cfg.snapshot_generations.max(1) {
            let path = crate::recovery::generation_path(&base, k);
            if !path.exists() {
                continue;
            }
            match crate::snapshot::snapshot_height(&path) {
                Ok(h) => floor = Some(floor.map_or(h, |f: u64| f.min(h))),
                // An unreadable generation: skip compaction entirely — we
                // cannot know which frames it would need.
                Err(_) => return,
            }
        }
        let Some(floor) = floor else { return };
        let journal = self.journal.as_mut().expect("checked above");
        if let Err(e) = journal.compact_below(floor) {
            self.metrics.journal_errors += 1;
            eprintln!("bstream: journal compaction failed: {e}");
        }
    }

    /// Ingest one block and run the periodic reclassification/snapshot
    /// duties its height triggers. With a journal attached, the block is
    /// made durable *before* it is applied — the write-ahead contract that
    /// lets [`Follower::recover`] rebuild this exact state after a crash.
    pub fn step(&mut self, block: &Block) {
        self.journal_block(block);
        self.ingest_block(block);
        let blocks_done = self.next_height;
        if self.cfg.reclass_every > 0 && blocks_done.is_multiple_of(self.cfg.reclass_every) {
            self.reclassify_dirty();
        }
        if self.cfg.snapshot_every > 0 && blocks_done.is_multiple_of(self.cfg.snapshot_every) {
            if let Some(path) = self.cfg.snapshot_path.clone() {
                match self.snapshot_to(&path) {
                    Ok(()) => self.compact_journal(),
                    Err(e) => {
                        eprintln!("bstream: snapshot to {} failed: {e}", path.display())
                    }
                }
            }
        }
    }

    /// Drain a feed to completion: step every block, track lag against the
    /// producer watermark, then run a final reclassification (and snapshot,
    /// if configured) so the label table is current at the tip.
    pub fn run(&mut self, feed: &BlockFeed) {
        while let Some(block) = feed.recv() {
            self.step(&block);
            feed.watermark().record_processed(block.height);
            self.metrics.record_lag(feed.watermark().lag());
        }
        self.reclassify_dirty();
        if let Some(path) = self.cfg.snapshot_path.clone() {
            match self.snapshot_to(&path) {
                Ok(()) => self.compact_journal(),
                Err(e) => {
                    eprintln!("bstream: final snapshot to {} failed: {e}", path.display())
                }
            }
        }
        if let Err(e) = self.sync_journal() {
            eprintln!("bstream: final journal sync failed: {e}");
        }
    }
}

/// Priority of a dirty address in the reclassification queue: smaller is
/// sooner. Never-classified addresses map to 0 (first of all); classified
/// ones order by ascending last-label margin. Margins are ≥ 0 and
/// `f32::to_bits` is monotonic over non-negative floats, so bit order
/// equals value order without any float comparison in the sort key.
pub(crate) fn priority_key(margin: Option<f32>) -> u64 {
    match margin {
        None => 0,
        Some(m) => u64::from(m.max(0.0).to_bits()) + 1,
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use baclassifier::BacConfig;
    use btcsim::{BlockCursor, Dataset, SimConfig, Simulator};

    pub(crate) fn test_artifact() -> ModelArtifact {
        let cfg = BacConfig::fast();
        let clf = BaClassifier::new(cfg.clone());
        let path = std::env::temp_dir().join(format!(
            "bstream_test_artifact_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        clf.save_weights(&path).unwrap();
        let weights = numnet::read_matrices(&mut std::fs::File::open(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        ModelArtifact {
            config: cfg,
            weights,
        }
    }

    pub(crate) fn test_sim(seed: u64, blocks: u64) -> SimConfig {
        SimConfig {
            blocks,
            ..SimConfig::tiny(seed)
        }
    }

    #[test]
    fn follower_labels_match_batch_pipeline_at_tip() {
        let cfg = test_sim(11, 30);
        let artifact = test_artifact();
        let mut follower = Follower::new(&artifact, FollowerConfig::default()).unwrap();
        for block in BlockCursor::new(cfg.clone()) {
            follower.step(&block);
        }

        let sim = Simulator::run_to_completion(cfg);
        let ds = Dataset::from_simulator(&sim, follower.cfg.min_txs);
        let clf = BaClassifier::from_artifact(&artifact).unwrap();
        assert!(!ds.is_empty());
        for record in &ds.records {
            let want = clf.predict(record).unwrap();
            assert_eq!(
                follower.labels().get(&record.address),
                Some(&want),
                "address {:?} diverged from the batch pipeline",
                record.address
            );
            assert_eq!(follower.history_len(record.address), record.txs.len());
        }
    }

    #[test]
    fn histories_match_batch_dataset_exactly() {
        let cfg = test_sim(13, 25);
        let artifact = test_artifact();
        let mut follower = Follower::new(&artifact, FollowerConfig::default()).unwrap();
        for block in BlockCursor::new(cfg.clone()) {
            follower.ingest_block(&block);
        }
        let sim = Simulator::run_to_completion(cfg);
        let ds = Dataset::from_simulator(&sim, 1);
        for record in &ds.records {
            let state = follower.states.get(&record.address).unwrap();
            assert_eq!(
                state.history, record.txs,
                "history for {:?}",
                record.address
            );
            assert_eq!(
                state.agg,
                FocusAggregates::from_history(record.address, &record.txs)
            );
        }
    }

    #[test]
    fn min_txs_gates_classification_not_tracking() {
        let cfg = test_sim(17, 20);
        let artifact = test_artifact();
        let follower_cfg = FollowerConfig {
            min_txs: 10_000, // nothing qualifies
            ..FollowerConfig::default()
        };
        let mut follower = Follower::new(&artifact, follower_cfg).unwrap();
        for block in BlockCursor::new(cfg) {
            follower.step(&block);
        }
        assert!(follower.num_tracked() > 0);
        assert!(follower.labels().is_empty());
    }

    #[test]
    fn tracked_filter_restricts_state() {
        let cfg = test_sim(19, 20);
        let sim = Simulator::run_to_completion(cfg.clone());
        let ds = Dataset::from_simulator(&sim, 3);
        let target = ds.records[0].address;
        let artifact = test_artifact();
        let follower_cfg = FollowerConfig {
            tracked: Some(BTreeSet::from([target])),
            ..FollowerConfig::default()
        };
        let mut follower = Follower::new(&artifact, follower_cfg).unwrap();
        for block in BlockCursor::new(cfg) {
            follower.step(&block);
        }
        assert_eq!(follower.num_tracked(), 1);
        assert_eq!(follower.history_len(target), ds.records[0].txs.len());
        assert!(follower.labels().contains_key(&target));
    }

    #[test]
    fn already_seen_blocks_are_skipped() {
        let cfg = test_sim(23, 10);
        let blocks: Vec<Block> = BlockCursor::new(cfg).collect();
        let artifact = test_artifact();
        let mut follower = Follower::new(&artifact, FollowerConfig::default()).unwrap();
        for b in &blocks {
            follower.ingest_block(b);
        }
        let applications = follower.metrics().tx_applications;
        // Replaying the whole chain must be a no-op.
        for b in &blocks {
            follower.ingest_block(b);
        }
        assert_eq!(follower.metrics().tx_applications, applications);
        assert_eq!(follower.next_height(), blocks.len() as u64);
    }

    #[test]
    fn streamed_embeddings_match_batch_embed_record_bytewise() {
        // The follower re-embeds through the CSR-prepared GFN path; its
        // per-slice cache must stay byte-identical to the batch
        // `embed_record` pipeline.
        let cfg = test_sim(31, 25);
        let artifact = test_artifact();
        let mut follower = Follower::new(&artifact, FollowerConfig::default()).unwrap();
        for block in BlockCursor::new(cfg.clone()) {
            follower.step(&block);
        }
        follower.reclassify_dirty();
        let sim = Simulator::run_to_completion(cfg);
        let ds = Dataset::from_simulator(&sim, follower.cfg.min_txs);
        let clf = BaClassifier::from_artifact(&artifact).unwrap();
        assert!(!ds.is_empty());
        for record in &ds.records {
            let batch = clf.embed_record(record);
            let state = follower.states.get(&record.address).unwrap();
            assert_eq!(
                state.embeds.len(),
                batch.len(),
                "slice count for {:?}",
                record.address
            );
            for (streamed, reference) in state.embeds.iter().zip(&batch) {
                assert_eq!(
                    streamed.as_slice(),
                    reference.as_slice(),
                    "embedding bytes for {:?}",
                    record.address
                );
            }
        }
    }

    #[test]
    fn engine_cache_keys_are_unaffected_by_embedding_path() {
        // Serving cache keys are (address id, history length, generation) —
        // independent of how embeddings are computed — so a repeat lookup
        // must hit the cache and follower invalidation must still re-key.
        use baserve::{Engine, EngineConfig};
        let cfg = test_sim(37, 20);
        let sim = Simulator::run_to_completion(cfg);
        let ds = Dataset::from_simulator(&sim, 3);
        let record = ds.records[0].clone();
        let engine = Engine::new(
            Arc::new(test_artifact()),
            EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let first = engine.classify(record.clone()).unwrap();
        let second = engine.classify(record.clone()).unwrap();
        assert_eq!(first.label, second.label);
        let m = engine.metrics();
        assert_eq!(m.cache_hits, 1, "repeat lookup must be key-cached");
        // Invalidation bumps the generation: the next lookup misses.
        engine.invalidate_address(record.address);
        engine.classify(record).unwrap();
        let m = engine.metrics();
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.invalidations, 1);
        engine.shutdown();
    }

    #[test]
    fn under_threshold_addresses_keep_their_dirty_bit() {
        // Regression: reclassify_dirty used to clear the dirty bit before
        // the min_txs gate, so a skipped address silently lost its pending
        // work and a later cadence (or a restore with a lowered threshold)
        // never picked it up.
        let cfg = test_sim(41, 20);
        let artifact = test_artifact();
        let follower_cfg = FollowerConfig {
            min_txs: 10_000, // nothing qualifies
            reclass_every: 0,
            ..FollowerConfig::default()
        };
        let mut follower = Follower::new(&artifact, follower_cfg).unwrap();
        for block in BlockCursor::new(cfg) {
            follower.ingest_block(&block);
        }
        assert!(follower.num_tracked() > 0);
        assert_eq!(follower.reclassify_dirty(), 0);
        assert!(
            follower.states.values().all(|s| s.dirty),
            "skipped addresses must stay dirty"
        );
        // Lowering the threshold (as a restore with a smaller min_txs
        // would) must pick the deferred addresses straight up, with no new
        // transactions needed.
        follower.cfg.min_txs = 1;
        let reclassified = follower.reclassify_dirty();
        assert_eq!(reclassified, follower.num_tracked());
        assert!(follower.states.values().all(|s| !s.dirty));
    }

    #[test]
    fn priority_orders_boundary_addresses_first() {
        assert_eq!(priority_key(None), 0, "unclassified goes first");
        let keys: Vec<u64> = [0.0f32, 0.01, 0.5, 2.0, 100.0]
            .iter()
            .map(|&m| priority_key(Some(m)))
            .collect();
        for pair in keys.windows(2) {
            assert!(pair[0] < pair[1], "keys must ascend with margin");
        }
        assert!(priority_key(Some(0.0)) > priority_key(None));
        // A negative margin cannot occur (winner minus runner-up), but the
        // key must stay total just in case.
        assert_eq!(priority_key(Some(-1.0)), priority_key(Some(0.0)));
    }

    #[test]
    fn coalesced_flips_and_batch_metrics_are_counted() {
        let cfg = test_sim(43, 30);
        let artifact = test_artifact();
        let follower_cfg = FollowerConfig {
            reclass_every: 0, // manual ticks
            ..FollowerConfig::default()
        };
        let mut follower = Follower::new(&artifact, follower_cfg).unwrap();
        for block in BlockCursor::new(cfg) {
            follower.ingest_block(&block);
        }
        // Every tracked address was touched at least once; busy ones were
        // touched while already dirty, which must be coalesced.
        let m = follower.metrics();
        assert!(m.coalesced_flips > 0);
        assert_eq!(
            m.tx_applications,
            m.coalesced_flips + follower.num_tracked() as u64,
            "every application either dirtied a clean address or coalesced"
        );
        let n = follower.reclassify_dirty();
        assert!(n > 0);
        let m = follower.metrics();
        assert!(m.reclass_batches > 0);
        assert_eq!(m.reclass_batch_addrs, n as u64);
        assert_eq!(m.priority_depth, n as u64);
        assert!(m.reclass_batch_slices >= n as u64);
    }

    #[test]
    fn batch_size_split_does_not_change_labels_or_embeddings() {
        let cfg = test_sim(47, 25);
        let artifact = test_artifact();
        let mut one_batch = Follower::new(
            &artifact,
            FollowerConfig {
                reclass_batch: 0, // whole dirty set at once
                ..FollowerConfig::default()
            },
        )
        .unwrap();
        let mut tiny_batches = Follower::new(
            &artifact,
            FollowerConfig {
                reclass_batch: 3,
                ..FollowerConfig::default()
            },
        )
        .unwrap();
        for block in BlockCursor::new(cfg) {
            one_batch.step(&block);
            tiny_batches.step(&block);
        }
        one_batch.reclassify_dirty();
        tiny_batches.reclassify_dirty();
        assert_eq!(one_batch.labels(), tiny_batches.labels());
        let a = one_batch.export_embeddings();
        let b = tiny_batches.export_embeddings();
        assert_eq!(a.len(), b.len());
        for (addr, embeds) in &a {
            let other = &b[addr];
            assert_eq!(embeds.len(), other.len());
            for (x, y) in embeds.iter().zip(other) {
                assert_eq!(x.as_slice(), y.as_slice(), "embeddings for {addr:?}");
            }
        }
        assert!(tiny_batches.metrics().reclass_batches > one_batch.metrics().reclass_batches);
    }

    #[test]
    fn reclassify_only_touches_dirty_addresses() {
        let cfg = test_sim(29, 20);
        let artifact = test_artifact();
        let follower_cfg = FollowerConfig {
            reclass_every: 0, // manual control
            ..FollowerConfig::default()
        };
        let mut follower = Follower::new(&artifact, follower_cfg).unwrap();
        for block in BlockCursor::new(cfg) {
            follower.ingest_block(&block);
        }
        let first = follower.reclassify_dirty();
        assert!(first > 0);
        // Nothing changed since: the second pass must be free.
        assert_eq!(follower.reclassify_dirty(), 0);
    }
}
