//! Write-ahead block journal: the crash-safety floor under the follower.
//!
//! Every block is appended to the journal *before* it is applied to
//! follower state, so a crash at any point loses nothing: restart restores
//! the latest valid snapshot and replays the journal tail (heights below
//! the snapshot are skipped by `ingest_block`'s resume rule). The journal
//! is an append-only file of checksummed, length-prefixed frames:
//!
//! ```text
//! [8-byte magic "BJRNL v1"]
//! frame := [u32 LE payload-len][u32 LE crc32(payload)][payload]
//! payload := LE binary block codec (see `encode_block`)
//! ```
//!
//! A torn write — the process died mid-append, or the tail sector never
//! hit the platter — shows up as a frame whose length field runs past EOF
//! or whose CRC does not match. [`scan_journal`] stops at the first such
//! frame; [`BlockJournal::open_or_create`] additionally truncates the file
//! there, so the journal self-heals to its longest valid prefix. Bit-flips
//! anywhere in the body are caught by the per-frame CRC; corrupt frames
//! never decode into a block.
//!
//! Durability is tunable: `sync_every = 1` fsyncs after every frame
//! (crash-loses-nothing), `N` batches fsyncs (crash loses at most the last
//! `N-1` blocks *from the journal* — but those blocks were not applied yet
//! either, so recovered state is still a consistent prefix), `0` leaves
//! syncing to the OS.

use btcsim::{Address, Amount, Block, OutPoint, Transaction, TxIn, TxOut, Txid};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// 8-byte file magic; the version is part of the magic so a future v2 is a
/// clean `UnsupportedVersion`-style error, not a CRC storm.
pub const JOURNAL_MAGIC: &[u8; 8] = b"BJRNL v1";

/// Frame header: payload length + CRC32 of the payload, both u32 LE.
const FRAME_HEADER: usize = 8;

/// Upper bound on a single frame payload (64 MiB). A length field larger
/// than this is treated as corruption rather than an allocation request.
const MAX_FRAME_LEN: u32 = 64 << 20;

// ---------------------------------------------------------------------------
// CRC32 (IEEE, reflected, poly 0xEDB88320) — table-based, no dependencies.
// ---------------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

/// CRC32 (IEEE) of `bytes`. Shared by the journal frames and the snapshot
/// checksum trailer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Block codec: fixed-width LE binary, field-for-field with `btcsim` types.
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serialize a block to the journal payload encoding.
pub fn encode_block(block: &Block) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + block.txs.len() * 64);
    put_u64(&mut out, block.height);
    put_u64(&mut out, block.timestamp);
    put_u32(&mut out, block.txs.len() as u32);
    for tx in &block.txs {
        put_u64(&mut out, tx.txid.0);
        put_u64(&mut out, tx.timestamp);
        put_u32(&mut out, tx.inputs.len() as u32);
        put_u32(&mut out, tx.outputs.len() as u32);
        for input in &tx.inputs {
            put_u64(&mut out, input.prevout.txid.0);
            put_u32(&mut out, input.prevout.vout);
            put_u64(&mut out, input.address.0);
            put_u64(&mut out, input.value.sats());
        }
        for output in &tx.outputs {
            put_u64(&mut out, output.address.0);
            put_u64(&mut out, output.value.sats());
        }
    }
    out
}

/// Bounds-checked little-endian cursor over a payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

/// Decode a journal payload back into a block. Every count is validated
/// against the remaining payload before allocation, so a corrupt (but
/// CRC-colliding) payload cannot request absurd memory.
pub fn decode_block(payload: &[u8]) -> Result<Block, String> {
    let mut cur = Cursor::new(payload);
    let height = cur.u64()?;
    let timestamp = cur.u64()?;
    let ntx = cur.u32()? as usize;
    // Each tx needs at least its 24-byte fixed header.
    if ntx > cur.remaining() / 24 {
        return Err(format!("tx count {ntx} exceeds payload"));
    }
    let mut txs = Vec::with_capacity(ntx);
    for _ in 0..ntx {
        let txid = Txid(cur.u64()?);
        let tx_timestamp = cur.u64()?;
        let nin = cur.u32()? as usize;
        let nout = cur.u32()? as usize;
        if nin > cur.remaining() / 28 {
            return Err(format!("input count {nin} exceeds payload"));
        }
        let mut inputs = Vec::with_capacity(nin);
        for _ in 0..nin {
            inputs.push(TxIn {
                prevout: OutPoint {
                    txid: Txid(cur.u64()?),
                    vout: cur.u32()?,
                },
                address: Address(cur.u64()?),
                value: Amount::from_sats(cur.u64()?),
            });
        }
        if nout > cur.remaining() / 16 {
            return Err(format!("output count {nout} exceeds payload"));
        }
        let mut outputs = Vec::with_capacity(nout);
        for _ in 0..nout {
            outputs.push(TxOut {
                address: Address(cur.u64()?),
                value: Amount::from_sats(cur.u64()?),
            });
        }
        txs.push(Transaction {
            txid,
            inputs,
            outputs,
            timestamp: tx_timestamp,
        });
    }
    if cur.remaining() != 0 {
        return Err(format!("{} trailing bytes after last tx", cur.remaining()));
    }
    Ok(Block {
        height,
        timestamp,
        txs,
    })
}

// ---------------------------------------------------------------------------
// Scanning
// ---------------------------------------------------------------------------

/// Where and why a scan stopped before EOF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornFrame {
    /// Byte offset of the first frame that failed to validate. The valid
    /// journal prefix ends here.
    pub offset: u64,
    pub reason: String,
}

/// Result of validating a journal file front to back.
#[derive(Debug)]
pub struct JournalScan {
    /// Every block recovered from the valid prefix, in append order.
    pub blocks: Vec<Block>,
    /// Length in bytes of the valid prefix (magic + whole good frames).
    pub valid_len: u64,
    /// First invalid frame, if the file does not end cleanly.
    pub torn: Option<TornFrame>,
}

/// Read and validate `path` front to back, stopping at the first frame
/// whose length field, CRC, or payload decoding fails. Never panics on
/// arbitrary bytes — corruption is reported via `torn`, and only an
/// unreadable file or bad magic is an `Err`.
pub fn scan_journal(path: &Path) -> std::io::Result<JournalScan> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < JOURNAL_MAGIC.len() || &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "{}: not a block journal (bad or missing magic)",
                path.display()
            ),
        ));
    }
    let mut scan = JournalScan {
        blocks: Vec::new(),
        valid_len: JOURNAL_MAGIC.len() as u64,
        torn: None,
    };
    let mut pos = JOURNAL_MAGIC.len();
    while pos < bytes.len() {
        let torn = |reason: String| TornFrame {
            offset: pos as u64,
            reason,
        };
        if bytes.len() - pos < FRAME_HEADER {
            scan.torn = Some(torn(format!(
                "truncated frame header ({} of {FRAME_HEADER} bytes)",
                bytes.len() - pos
            )));
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let want_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            scan.torn = Some(torn(format!("frame length {len} exceeds {MAX_FRAME_LEN}")));
            break;
        }
        let body_start = pos + FRAME_HEADER;
        let body_end = body_start + len as usize;
        if body_end > bytes.len() {
            scan.torn = Some(torn(format!(
                "frame body truncated ({} of {len} bytes)",
                bytes.len() - body_start
            )));
            break;
        }
        let payload = &bytes[body_start..body_end];
        let got_crc = crc32(payload);
        if got_crc != want_crc {
            scan.torn = Some(torn(format!(
                "crc mismatch (stored {want_crc:08x}, computed {got_crc:08x})"
            )));
            break;
        }
        match decode_block(payload) {
            Ok(block) => scan.blocks.push(block),
            Err(reason) => {
                scan.torn = Some(torn(format!("undecodable payload: {reason}")));
                break;
            }
        }
        pos = body_end;
        scan.valid_len = pos as u64;
    }
    Ok(scan)
}

// ---------------------------------------------------------------------------
// The journal writer
// ---------------------------------------------------------------------------

/// Append-only block journal with a configurable fsync cadence.
pub struct BlockJournal {
    file: File,
    path: PathBuf,
    /// fsync after every `sync_every` appended frames; 0 never syncs.
    sync_every: u64,
    appended_since_sync: u64,
}

impl BlockJournal {
    /// Create a fresh journal at `path`, truncating anything there.
    pub fn create(path: &Path, sync_every: u64) -> std::io::Result<Self> {
        let mut file = File::create(path)?;
        file.write_all(JOURNAL_MAGIC)?;
        file.sync_all()?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            sync_every,
            appended_since_sync: 0,
        })
    }

    /// Open an existing journal for appending — or create one if the path
    /// is absent. A torn tail (see [`scan_journal`]) is truncated away so
    /// appends land after the last whole frame. Returns the journal plus
    /// the scan of what survived, so the caller can replay it.
    pub fn open_or_create(path: &Path, sync_every: u64) -> std::io::Result<(Self, JournalScan)> {
        if !path.exists() {
            let journal = Self::create(path, sync_every)?;
            return Ok((
                journal,
                JournalScan {
                    blocks: Vec::new(),
                    valid_len: JOURNAL_MAGIC.len() as u64,
                    torn: None,
                },
            ));
        }
        let scan = scan_journal(path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        if scan.torn.is_some() {
            file.set_len(scan.valid_len)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(scan.valid_len))?;
        Ok((
            Self {
                file,
                path: path.to_path_buf(),
                sync_every,
                appended_since_sync: 0,
            },
            scan,
        ))
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one block as a checksummed frame. Returns the frame size in
    /// bytes and whether this append fsynced (per the cadence). Writes are
    /// unbuffered: once `append` returns, the frame is visible to any
    /// other handle on the file (needed by shard workers recovering from
    /// the driver's journal), even if not yet durable.
    pub fn append(&mut self, block: &Block) -> std::io::Result<(u64, bool)> {
        let payload = encode_block(block);
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.appended_since_sync += 1;
        let synced = self.sync_every > 0 && self.appended_since_sync >= self.sync_every;
        if synced {
            self.sync()?;
        }
        Ok((frame.len() as u64, synced))
    }

    /// Force everything appended so far to stable storage.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_all()?;
        self.appended_since_sync = 0;
        Ok(())
    }

    /// Drop every frame whose block height is below `height`, rewriting
    /// the journal atomically (temp + fsync + rename) and reopening the
    /// handle. Called after a snapshot: frames at or above the snapshot
    /// height must survive so a fallback to an *older* snapshot generation
    /// still finds its replay tail — pass the minimum height across all
    /// retained generations, not the newest.
    pub fn compact_below(&mut self, height: u64) -> std::io::Result<u64> {
        self.sync()?;
        let scan = scan_journal(&self.path)?;
        let kept: Vec<&Block> = scan.blocks.iter().filter(|b| b.height >= height).collect();
        let dropped = (scan.blocks.len() - kept.len()) as u64;
        if dropped == 0 && scan.torn.is_none() {
            return Ok(0);
        }
        let mut tmp_name = self.path.as_os_str().to_os_string();
        tmp_name.push(".compact.tmp");
        let tmp = PathBuf::from(tmp_name);
        {
            let mut out = File::create(&tmp)?;
            out.write_all(JOURNAL_MAGIC)?;
            for block in &kept {
                let payload = encode_block(block);
                out.write_all(&(payload.len() as u32).to_le_bytes())?;
                out.write_all(&crc32(&payload).to_le_bytes())?;
                out.write_all(&payload)?;
            }
            out.sync_all()?;
        }
        if let Err(e) = std::fs::rename(&tmp, &self.path) {
            std::fs::remove_file(&tmp).ok();
            return Err(e);
        }
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.appended_since_sync = 0;
        Ok(dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcsim::BlockCursor;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "bstream_journal_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn sim_blocks(seed: u64, n: u64) -> Vec<Block> {
        let cfg = btcsim::SimConfig {
            blocks: n,
            ..btcsim::SimConfig::tiny(seed)
        };
        BlockCursor::new(cfg).collect()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn block_codec_roundtrips() {
        for block in sim_blocks(51, 12) {
            let payload = encode_block(&block);
            let back = decode_block(&payload).unwrap();
            assert_eq!(back, block);
        }
    }

    #[test]
    fn append_then_scan_recovers_every_block() {
        let path = temp_path("roundtrip");
        let blocks = sim_blocks(53, 10);
        let mut journal = BlockJournal::create(&path, 1).unwrap();
        for b in &blocks {
            let (bytes, synced) = journal.append(b).unwrap();
            assert!(bytes > FRAME_HEADER as u64);
            assert!(synced, "sync_every=1 must sync each frame");
        }
        drop(journal);
        let scan = scan_journal(&path).unwrap();
        assert!(scan.torn.is_none());
        assert_eq!(scan.blocks, blocks);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_detected_and_truncated_at_every_cut_point() {
        let path = temp_path("torn");
        let blocks = sim_blocks(59, 6);
        let mut journal = BlockJournal::create(&path, 1).unwrap();
        for b in &blocks {
            journal.append(b).unwrap();
        }
        drop(journal);
        let full = std::fs::read(&path).unwrap();
        // Cut the file at every possible byte boundary: the scan must
        // recover a clean prefix of the original blocks, never panic.
        for cut in JOURNAL_MAGIC.len()..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = scan_journal(&path).unwrap();
            assert_eq!(scan.blocks.as_slice(), &blocks[..scan.blocks.len()]);
            if cut < full.len() {
                assert!(scan.valid_len <= cut as u64);
            }
            // Reopening truncates to the valid prefix and appends cleanly.
            let (mut journal, reopened) = BlockJournal::open_or_create(&path, 1).unwrap();
            let survived = reopened.blocks.len();
            assert_eq!(reopened.blocks.as_slice(), &blocks[..survived]);
            for b in &blocks[survived..] {
                journal.append(b).unwrap();
            }
            drop(journal);
            let healed = scan_journal(&path).unwrap();
            assert!(healed.torn.is_none());
            assert_eq!(healed.blocks, blocks);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bitflip_in_payload_is_caught_by_crc() {
        let path = temp_path("bitflip");
        let blocks = sim_blocks(61, 4);
        let mut journal = BlockJournal::create(&path, 1).unwrap();
        for b in &blocks {
            journal.append(b).unwrap();
        }
        drop(journal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit in the middle of the file body.
        let mid = JOURNAL_MAGIC.len() + (bytes.len() - JOURNAL_MAGIC.len()) / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_journal(&path).unwrap();
        assert!(scan.torn.is_some(), "flip must be detected");
        assert_eq!(scan.blocks.as_slice(), &blocks[..scan.blocks.len()]);
        assert!(scan.blocks.len() < blocks.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_an_error_not_a_scan() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTAJRNL plus some garbage").unwrap();
        let err = scan_journal(&path).unwrap_err();
        assert!(err.to_string().contains("not a block journal"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sync_cadence_batches_fsyncs() {
        let path = temp_path("cadence");
        let blocks = sim_blocks(67, 5); // 6 blocks: heights 0..=5
        let mut journal = BlockJournal::create(&path, 3).unwrap();
        let synced: Vec<bool> = blocks
            .iter()
            .map(|b| journal.append(b).unwrap().1)
            .collect();
        assert_eq!(synced, vec![false, false, true, false, false, true]);
        // sync_every = 0: never synced by cadence.
        let path0 = temp_path("cadence0");
        let mut never = BlockJournal::create(&path0, 0).unwrap();
        for b in &blocks {
            assert!(!never.append(b).unwrap().1);
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path0).ok();
    }

    #[test]
    fn compaction_drops_only_frames_below_the_floor() {
        let path = temp_path("compact");
        let blocks = sim_blocks(71, 7); // 8 blocks: heights 0..=7
        let mut journal = BlockJournal::create(&path, 1).unwrap();
        for b in &blocks {
            journal.append(b).unwrap();
        }
        let dropped = journal.compact_below(5).unwrap();
        assert_eq!(dropped, 5);
        // The journal stays appendable after compaction.
        let extra = sim_blocks(71, 8).pop().unwrap();
        journal.append(&extra).unwrap();
        drop(journal);
        let scan = scan_journal(&path).unwrap();
        assert!(scan.torn.is_none());
        let heights: Vec<u64> = scan.blocks.iter().map(|b| b.height).collect();
        assert_eq!(heights, vec![5, 6, 7, 8]);
        // Compacting below 0 is a no-op.
        let (mut journal, _) = BlockJournal::open_or_create(&path, 1).unwrap();
        assert_eq!(journal.compact_below(0).unwrap(), 0);
        std::fs::remove_file(&path).ok();
    }
}
