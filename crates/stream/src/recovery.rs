//! Crash recovery: snapshot generations, quarantine, and journal replay.
//!
//! The durable state of a follower is a small family of files:
//!
//! ```text
//! base            newest snapshot (generation 0)
//! base.g1         previous snapshot (generation 1)
//! base.g2 …       older generations, up to `snapshot_generations`
//! journal         write-ahead block journal (frames ≥ the oldest
//!                 generation's height survive compaction)
//! ```
//!
//! [`Follower::recover`] walks the generations newest-first. A snapshot
//! that fails its checksum (or any parse) is renamed to `*.quarantine` —
//! kept for post-mortems, never retried — and the next generation is
//! tried; the older the generation, the longer the journal replay that
//! follows, but the recovered tip state is identical. Only when *no*
//! generation restores does recovery start from genesis, which is still
//! correct as long as the journal reaches back that far (a gap between
//! the restored height and the journal's first frame is a hard error, not
//! a silent hole in the state).
//!
//! Replay never consults fault-injection hooks and never re-journals:
//! blocks come *from* the journal and are applied with the same
//! `ingest_block` path as live ingestion, then one reclassification pass
//! brings the label table current. Recovery is therefore byte-identical
//! to an uninterrupted run — the property `tests/crash_recovery.rs` and
//! `chaos_stream_bench` assert.

use crate::follower::{Follower, FollowerConfig};
use crate::journal::{scan_journal, BlockJournal, JournalScan};
use crate::snapshot::SnapshotError;
use baclassifier::ModelArtifact;
use std::path::{Path, PathBuf};

/// Path of snapshot generation `k` for base path `base`: the base itself
/// for `k = 0`, `base.g<k>` for older generations.
pub fn generation_path(base: &Path, k: usize) -> PathBuf {
    if k == 0 {
        return base.to_path_buf();
    }
    let mut name = base.as_os_str().to_os_string();
    name.push(format!(".g{k}"));
    PathBuf::from(name)
}

/// Path a corrupt snapshot is quarantined to.
pub fn quarantine_path(snapshot: &Path) -> PathBuf {
    let mut name = snapshot.as_os_str().to_os_string();
    name.push(".quarantine");
    PathBuf::from(name)
}

/// Shift existing generations one slot older ahead of a new snapshot
/// write: the oldest retained generation is dropped, `base` becomes
/// `base.g1`, and so on. With `generations <= 1` nothing is kept beyond
/// the base file and this is a no-op.
pub(crate) fn rotate_generations(base: &Path, generations: usize) -> std::io::Result<()> {
    if generations <= 1 || !base.exists() {
        return Ok(());
    }
    std::fs::remove_file(generation_path(base, generations - 1)).ok();
    for k in (0..generations - 1).rev() {
        let from = generation_path(base, k);
        if from.exists() {
            std::fs::rename(&from, generation_path(base, k + 1))?;
        }
    }
    Ok(())
}

/// What [`Follower::recover`] rebuilt and from where.
pub struct Recovery {
    pub follower: Follower,
    /// Which snapshot generation restored (0 = newest); `None` when no
    /// usable snapshot existed and state was rebuilt from the journal
    /// alone.
    pub restored_generation: Option<usize>,
    /// Snapshots that failed restore, with where they were moved and why.
    pub quarantined: Vec<(PathBuf, String)>,
    /// Blocks replayed from the journal tail (heights the restored
    /// snapshot did not already cover).
    pub replayed_blocks: u64,
    /// Offset and reason of a torn journal tail, if one was truncated.
    pub journal_torn: Option<String>,
}

impl Follower {
    /// Recover follower state from disk: restore the newest valid
    /// snapshot generation (quarantining corrupt ones), replay the
    /// journal tail, reclassify, and leave the journal attached for
    /// continued ingestion. Equivalent to
    /// [`Follower::recover_with`]`(artifact, cfg, true)`.
    pub fn recover(
        artifact: &ModelArtifact,
        cfg: FollowerConfig,
    ) -> Result<Recovery, SnapshotError> {
        Self::recover_with(artifact, cfg, true)
    }

    /// [`Follower::recover`] with control over journal ownership. With
    /// `attach_journal` the journal is opened read-write (truncating any
    /// torn tail) and attached to the follower for continued appends.
    /// Without it the journal is only *read* for replay — the mode shard
    /// workers use when the sharding driver owns the journal file.
    pub fn recover_with(
        artifact: &ModelArtifact,
        cfg: FollowerConfig,
        attach_journal: bool,
    ) -> Result<Recovery, SnapshotError> {
        let generations = cfg.snapshot_generations.max(1);
        let mut quarantined: Vec<(PathBuf, String)> = Vec::new();
        let mut restored: Option<(Follower, usize)> = None;
        if let Some(base) = cfg.snapshot_path.clone() {
            for k in 0..generations {
                let path = generation_path(&base, k);
                if !path.exists() {
                    continue;
                }
                match Follower::restore(artifact, cfg.clone(), &path) {
                    Ok(f) => {
                        restored = Some((f, k));
                        break;
                    }
                    Err(e) => {
                        let dest = quarantine_path(&path);
                        let reason = match std::fs::rename(&path, &dest) {
                            Ok(()) => format!("{e} (quarantined to {})", dest.display()),
                            Err(mv) => format!("{e} (quarantine rename failed: {mv})"),
                        };
                        eprintln!("bstream: snapshot {} unusable: {reason}", path.display());
                        quarantined.push((dest, reason));
                    }
                }
            }
        }
        let (mut follower, restored_generation) = match restored {
            Some((f, k)) => (f, Some(k)),
            None => (
                Follower::new(artifact, cfg.clone()).map_err(SnapshotError::Artifact)?,
                None,
            ),
        };
        follower.metrics_mut().snapshots_quarantined += quarantined.len() as u64;

        // Replay the journal tail over the restored state.
        let mut replayed_blocks = 0u64;
        let mut journal_torn = None;
        let mut journal = None;
        if let Some(jpath) = cfg.journal_path.clone() {
            let scan: Option<JournalScan> = if attach_journal {
                let (j, scan) = BlockJournal::open_or_create(&jpath, cfg.journal_sync_every)?;
                journal = Some(j);
                Some(scan)
            } else if jpath.exists() {
                Some(scan_journal(&jpath)?)
            } else {
                None
            };
            if let Some(scan) = scan {
                if let Some(torn) = &scan.torn {
                    journal_torn = Some(format!(
                        "{}: torn frame at byte {}: {} (truncated to last whole frame)",
                        jpath.display(),
                        torn.offset,
                        torn.reason
                    ));
                }
                for block in &scan.blocks {
                    if block.height < follower.next_height() {
                        continue;
                    }
                    if block.height > follower.next_height() {
                        return Err(SnapshotError::Malformed(format!(
                            "{}: journal gap: restored state resumes at height {} but the \
                             journal's next frame is height {} — blocks are missing",
                            jpath.display(),
                            follower.next_height(),
                            block.height
                        )));
                    }
                    follower.ingest_block(block);
                    replayed_blocks += 1;
                }
                follower.metrics_mut().journal_replayed += replayed_blocks;
            }
        }
        follower.reclassify_dirty();
        if let Some(j) = journal {
            follower.attach_journal(j);
        }
        Ok(Recovery {
            follower,
            restored_generation,
            quarantined,
            replayed_blocks,
            journal_torn,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::follower::tests::{test_artifact, test_sim};
    use btcsim::{Block, BlockCursor};

    fn temp_base(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "bstream_recovery_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn cleanup(base: &Path) {
        for k in 0..4 {
            let p = generation_path(base, k);
            std::fs::remove_file(quarantine_path(&p)).ok();
            std::fs::remove_file(&p).ok();
        }
        let mut journal = base.as_os_str().to_os_string();
        journal.push(".journal");
        std::fs::remove_file(PathBuf::from(journal)).ok();
    }

    fn recovery_cfg(base: &Path) -> FollowerConfig {
        let mut journal = base.as_os_str().to_os_string();
        journal.push(".journal");
        FollowerConfig {
            snapshot_path: Some(base.to_path_buf()),
            journal_path: Some(PathBuf::from(journal)),
            snapshot_generations: 2,
            ..FollowerConfig::default()
        }
    }

    /// Uninterrupted reference over the same chain and config shape.
    fn reference_tip(artifact: &baclassifier::ModelArtifact, blocks: &[Block]) -> Follower {
        let mut f = Follower::new(artifact, FollowerConfig::default()).unwrap();
        for b in blocks {
            f.step(b);
        }
        f.reclassify_dirty();
        f
    }

    fn assert_identical(recovered: &mut Follower, reference: &Follower) {
        recovered.mark_all_dirty();
        recovered.reclassify_dirty();
        assert_eq!(recovered.next_height(), reference.next_height());
        assert_eq!(recovered.labels(), reference.labels());
        assert_eq!(recovered.history_lens(), reference.history_lens());
        let want = reference.export_embeddings();
        let got = recovered.export_embeddings();
        assert_eq!(got.len(), want.len());
        for (addr, embeds) in &got {
            let expect = &want[addr];
            assert_eq!(embeds.len(), expect.len(), "slice count for {addr:?}");
            for (g, w) in embeds.iter().zip(expect) {
                assert_eq!(g.as_slice(), w.as_slice(), "embedding bytes for {addr:?}");
            }
        }
    }

    #[test]
    fn snapshot_generations_rotate() {
        let base = temp_base("rotate");
        cleanup(&base);
        let artifact = test_artifact();
        let blocks: Vec<Block> = BlockCursor::new(test_sim(73, 12)).collect();
        let cfg = FollowerConfig {
            snapshot_path: Some(base.clone()),
            snapshot_generations: 3,
            ..FollowerConfig::default()
        };
        let mut follower = Follower::new(&artifact, cfg).unwrap();
        let mut snapshot_heights = Vec::new();
        for (i, b) in blocks.iter().enumerate() {
            follower.step(b);
            if i % 3 == 2 {
                follower.snapshot_to(&base).unwrap();
                snapshot_heights.push(follower.next_height());
            }
        }
        // Newest in base, the two prior checkpoints in .g1/.g2.
        let n = snapshot_heights.len();
        for (k, want) in (0..3).zip(snapshot_heights.iter().rev().take(3)) {
            let path = generation_path(&base, k);
            assert!(path.exists(), "generation {k} missing");
            assert_eq!(
                crate::snapshot::snapshot_height(&path).unwrap(),
                *want,
                "generation {k} height"
            );
        }
        assert!(n >= 3);
        assert!(!generation_path(&base, 3).exists(), "over-retention");
        cleanup(&base);
    }

    #[test]
    fn crash_midway_recovers_byte_identically_via_journal() {
        let base = temp_base("crash");
        cleanup(&base);
        let artifact = test_artifact();
        let blocks: Vec<Block> = BlockCursor::new(test_sim(79, 24)).collect();
        let reference = reference_tip(&artifact, &blocks);
        let cfg = recovery_cfg(&base);

        // Run half the chain with a snapshot early on, then "crash" (drop
        // without a final snapshot — the journal holds the tail).
        {
            let mut rec = Follower::recover(&artifact, cfg.clone()).unwrap().follower;
            for b in &blocks[..16] {
                rec.step(b);
                if b.height == 7 {
                    rec.snapshot_to(&base).unwrap();
                }
            }
            assert!(rec.metrics().journal_frames >= 16);
        }

        // Recover: snapshot at height 8, journal replay for the rest.
        let recovery = Follower::recover(&artifact, cfg).unwrap();
        assert_eq!(recovery.restored_generation, Some(0));
        assert!(recovery.quarantined.is_empty());
        assert_eq!(recovery.replayed_blocks, 8, "journal tail after height 8");
        let mut recovered = recovery.follower;
        assert_eq!(recovered.next_height(), 16);
        // Finish the chain and compare against the uninterrupted run.
        for b in &blocks[16..] {
            recovered.step(b);
        }
        recovered.reclassify_dirty();
        assert_identical(&mut recovered, &reference);
        cleanup(&base);
    }

    #[test]
    fn corrupt_latest_generation_falls_back_and_quarantines() {
        let base = temp_base("fallback");
        cleanup(&base);
        let artifact = test_artifact();
        let blocks: Vec<Block> = BlockCursor::new(test_sim(83, 20)).collect();
        let reference = reference_tip(&artifact, &blocks);
        let cfg = recovery_cfg(&base);

        {
            let mut rec = Follower::recover(&artifact, cfg.clone()).unwrap().follower;
            for b in &blocks {
                rec.step(b);
                if b.height == 5 || b.height == 12 {
                    rec.snapshot_to(&base).unwrap();
                }
            }
        }
        // Corrupt the newest snapshot (generation 0).
        let mut bytes = std::fs::read(&base).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(&base, &bytes).unwrap();

        let recovery = Follower::recover(&artifact, cfg).unwrap();
        assert_eq!(recovery.restored_generation, Some(1), "fell back to .g1");
        assert_eq!(recovery.quarantined.len(), 1);
        assert!(quarantine_path(&base).exists(), "corrupt file preserved");
        assert!(!base.exists(), "corrupt file moved out of the way");
        // Longer replay: everything after the .g1 checkpoint at height 6.
        assert_eq!(recovery.replayed_blocks, blocks.len() as u64 - 6);
        let mut recovered = recovery.follower;
        assert_identical(&mut recovered, &reference);
        cleanup(&base);
    }

    #[test]
    fn recovery_from_journal_alone_rebuilds_everything() {
        let base = temp_base("journalonly");
        cleanup(&base);
        let artifact = test_artifact();
        let blocks: Vec<Block> = BlockCursor::new(test_sim(89, 15)).collect();
        let reference = reference_tip(&artifact, &blocks);
        let cfg = recovery_cfg(&base);
        {
            let mut rec = Follower::recover(&artifact, cfg.clone()).unwrap().follower;
            for b in &blocks {
                rec.step(b);
            }
            // No snapshot was ever written.
        }
        let recovery = Follower::recover(&artifact, cfg).unwrap();
        assert_eq!(recovery.restored_generation, None);
        assert_eq!(recovery.replayed_blocks, blocks.len() as u64);
        let mut recovered = recovery.follower;
        assert_identical(&mut recovered, &reference);
        cleanup(&base);
    }

    #[test]
    fn journal_gap_is_a_hard_error() {
        let base = temp_base("gap");
        cleanup(&base);
        let artifact = test_artifact();
        let blocks: Vec<Block> = BlockCursor::new(test_sim(97, 10)).collect();
        let cfg = recovery_cfg(&base);
        {
            let mut rec = Follower::recover(&artifact, cfg.clone()).unwrap().follower;
            for b in &blocks {
                rec.step(b);
                if b.height == 6 {
                    rec.snapshot_to(&base).unwrap();
                }
            }
            // Compact the journal past the snapshot, then delete the
            // snapshot: the journal now starts at height 7 with no state
            // below it.
        }
        let jpath = cfg.journal_path.clone().unwrap();
        let (mut j, _) = crate::journal::BlockJournal::open_or_create(&jpath, 1).unwrap();
        j.compact_below(7).unwrap();
        drop(j);
        for k in 0..2 {
            std::fs::remove_file(generation_path(&base, k)).ok();
        }
        match Follower::recover(&artifact, cfg).err() {
            Some(SnapshotError::Malformed(m)) => {
                assert!(m.contains("journal gap"), "message: {m}")
            }
            other => panic!("expected journal-gap error, got {other:?}"),
        }
        cleanup(&base);
    }

    #[test]
    fn torn_journal_tail_is_truncated_and_reported() {
        let base = temp_base("torntail");
        cleanup(&base);
        let artifact = test_artifact();
        let blocks: Vec<Block> = BlockCursor::new(test_sim(101, 10)).collect();
        let cfg = recovery_cfg(&base);
        {
            let mut rec = Follower::recover(&artifact, cfg.clone()).unwrap().follower;
            for b in &blocks {
                rec.step(b);
            }
        }
        let jpath = cfg.journal_path.clone().unwrap();
        let bytes = std::fs::read(&jpath).unwrap();
        std::fs::write(&jpath, &bytes[..bytes.len() - 3]).unwrap();
        let recovery = Follower::recover(&artifact, cfg).unwrap();
        assert!(recovery.journal_torn.is_some());
        assert_eq!(recovery.replayed_blocks, blocks.len() as u64 - 1);
        assert_eq!(recovery.follower.next_height(), blocks.len() as u64 - 1);
        cleanup(&base);
    }
}
