//! Snapshot/restore of follower state.
//!
//! Format (`BSTREAM v1`, line-oriented text, one file per snapshot):
//!
//! ```text
//! BSTREAM v1
//! height <next_height>
//! shard <index> <count> <hash-version>     (only for sharded followers)
//! addresses <n>
//! A <addr> <label-index|-> <num-txs>
//! T <txid> <timestamp> <n-in> <n-out> <addr>:<sats> ...
//! checksum <crc32-hex>                     (over every preceding byte)
//! ```
//!
//! Each `A` line is followed by its `num-txs` `T` lines, inputs listed
//! before outputs. Only transaction histories and the label table are
//! persisted — incremental graphs, aggregates, and embeddings are
//! deterministic functions of the history and are rebuilt on restore, so
//! the format survives changes to any derived representation. Snapshots
//! are written atomically (temp file + fsync + rename): a crash mid-write
//! leaves the previous snapshot intact.
//!
//! The trailing `checksum` line is a CRC32 (same polynomial as the block
//! journal) over every byte before it. Restore verifies it before trusting
//! a single parsed value, so a bit-flip anywhere in the file is a
//! [`SnapshotError::Checksum`] naming the path — not a silently divergent
//! label table. Files written before the trailer existed (no `checksum`
//! line) still restore; they simply forgo the integrity check. Every parse
//! error names the file and the 1-based line it occurred on.
//!
//! The optional `shard` line makes a snapshot self-describing about its
//! place in a sharded deployment: restore adopts the recorded assignment
//! when the config doesn't name one, rejects the file when the config
//! names a different one, and refuses files written under a partition
//! hash this build doesn't implement. A file with no `shard` line is the
//! trivial 1-shard layout, so pre-sharding snapshots restore unchanged.

use crate::follower::{Follower, FollowerConfig};
use crate::journal::crc32;
use baclassifier::{ArtifactError, ModelArtifact, ShardAssignment, SHARD_HASH_VERSION};
use btcsim::{Address, Amount, Label, TxView, Txid};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Why a snapshot could not be written or read back.
#[derive(Debug)]
pub enum SnapshotError {
    Io(std::io::Error),
    /// The file exists but does not parse as a snapshot.
    Malformed(String),
    /// The file is a snapshot of a version this build cannot read.
    UnsupportedVersion(String),
    /// The file's checksum trailer does not match its contents.
    Checksum(String),
    /// The model artifact could not be loaded during restore.
    Artifact(ArtifactError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::Malformed(m) => write!(f, "malformed snapshot: {m}"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version: {v}")
            }
            SnapshotError::Checksum(m) => write!(f, "snapshot checksum mismatch: {m}"),
            SnapshotError::Artifact(e) => write!(f, "artifact: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Malformed(msg.into())
}

/// Line-by-line reader that knows which file and line it is on, so every
/// error can say exactly where parsing stopped.
struct SnapshotLines<'a> {
    path: &'a Path,
    lines: std::iter::Peekable<std::str::Lines<'a>>,
    /// 1-based number of the last line handed out.
    line_no: usize,
}

impl<'a> SnapshotLines<'a> {
    fn new(path: &'a Path, text: &'a str) -> Self {
        Self {
            path,
            lines: text.lines().peekable(),
            line_no: 0,
        }
    }

    fn next_line(&mut self, what: &str) -> Result<&'a str, SnapshotError> {
        match self.lines.next() {
            Some(line) => {
                self.line_no += 1;
                Ok(line)
            }
            None => Err(malformed(format!(
                "{}: unexpected end of file at line {}: missing {what}",
                self.path.display(),
                self.line_no + 1
            ))),
        }
    }

    fn peek(&mut self) -> Option<&&'a str> {
        self.lines.peek()
    }

    fn bad(&self, msg: impl std::fmt::Display) -> SnapshotError {
        malformed(format!(
            "{} line {}: {msg}",
            self.path.display(),
            self.line_no
        ))
    }
}

fn parse_u64(tok: Option<&str>, what: &str) -> Result<u64, String> {
    tok.ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("bad {what}"))
}

fn write_entries(line: &mut String, entries: &[(Address, Amount)]) {
    for (addr, value) in entries {
        let _ = write!(line, " {}:{}", addr.0, value.sats());
    }
}

fn parse_entry(tok: &str) -> Result<(Address, Amount), String> {
    let (addr, sats) = tok
        .split_once(':')
        .ok_or_else(|| format!("bad entry {tok:?}"))?;
    Ok((
        Address(parse_u64(Some(addr), "entry address")?),
        Amount::from_sats(parse_u64(Some(sats), "entry sats")?),
    ))
}

/// Read just the `height` header of a snapshot — the resume height its
/// restore would start at — without parsing the body. Used to compute the
/// journal-compaction floor across retained snapshot generations.
pub fn snapshot_height(path: &Path) -> Result<u64, SnapshotError> {
    let file = std::fs::File::open(path)?;
    let mut reader = std::io::BufReader::new(file);
    let mut header = String::new();
    std::io::BufRead::read_line(&mut reader, &mut header)?;
    if header.trim_end() != "BSTREAM v1" {
        return Err(SnapshotError::UnsupportedVersion(format!(
            "{}: {}",
            path.display(),
            header.trim_end()
        )));
    }
    let mut line = String::new();
    std::io::BufRead::read_line(&mut reader, &mut line)?;
    let mut toks = line.split_whitespace();
    if toks.next() != Some("height") {
        return Err(malformed(format!(
            "{} line 2: expected height line",
            path.display()
        )));
    }
    parse_u64(toks.next(), "height")
        .map_err(|m| malformed(format!("{} line 2: {m}", path.display())))
}

impl Follower {
    /// Write a snapshot to `path`, atomically, with a checksum trailer.
    ///
    /// Runs a reclassification pass first so the snapshot captures a
    /// fully-classified point: a restored follower starts with no dirty
    /// state, so an address dirty at checkpoint time but untouched
    /// afterwards would otherwise never get its pending label.
    pub fn snapshot_to(&mut self, path: &Path) -> Result<(), SnapshotError> {
        self.reclassify_dirty();

        let mut out = String::new();
        out.push_str("BSTREAM v1\n");
        let _ = writeln!(out, "height {}", self.next_height);
        if let Some(shard) = &self.cfg.shard {
            let _ = writeln!(
                out,
                "shard {} {} {}",
                shard.index, shard.count, SHARD_HASH_VERSION
            );
        }
        let _ = writeln!(out, "addresses {}", self.states.len());
        for (addr, state) in &self.states {
            let label = self
                .labels
                .get(addr)
                .map_or_else(|| "-".to_string(), |l| l.index().to_string());
            let _ = writeln!(out, "A {} {} {}", addr.0, label, state.history.len());
            for tx in &state.history {
                let mut line = format!(
                    "T {} {} {} {}",
                    tx.txid.0,
                    tx.timestamp,
                    tx.inputs.len(),
                    tx.outputs.len()
                );
                write_entries(&mut line, &tx.inputs);
                write_entries(&mut line, &tx.outputs);
                out.push_str(&line);
                out.push('\n');
            }
        }
        let _ = writeln!(out, "checksum {:08x}", crc32(out.as_bytes()));

        // Rotate older generations aside before the rename replaces the
        // base file, so a corrupt write discovered later still has a
        // predecessor to fall back to.
        crate::recovery::rotate_generations(path, self.cfg.snapshot_generations)?;

        // Append `.tmp` to the whole file name rather than replacing the
        // last extension: per-shard snapshots (`base.bsnap.0of4`,
        // `base.bsnap.1of4`, …) are written concurrently by one process,
        // and `with_extension` would collapse them all onto one temp file
        // that the workers truncate and rename out from under each other.
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp_name);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(out.as_bytes())?;
            f.sync_all()?;
        }
        if let Err(e) = std::fs::rename(&tmp, path) {
            std::fs::remove_file(&tmp).ok();
            return Err(e.into());
        }
        self.metrics.snapshots_written += 1;
        Ok(())
    }

    /// Rebuild a follower from a snapshot, replaying every stored history
    /// through the incremental path. The restored follower resumes at the
    /// snapshot's height: feed it the chain from there (or an overlapping
    /// prefix — already-seen blocks are skipped).
    pub fn restore(
        artifact: &ModelArtifact,
        mut cfg: FollowerConfig,
        path: &Path,
    ) -> Result<Self, SnapshotError> {
        let text = std::fs::read_to_string(path)?;

        // Verify the checksum trailer (if present) before trusting any
        // parsed value. The trailer covers every byte before its own line.
        let body = match text.lines().next_back() {
            Some(last) if last.starts_with("checksum ") => {
                let covered = &text[..text.len() - last.len() - 1];
                let stored = last["checksum ".len()..].trim();
                let computed = crc32(covered.as_bytes());
                let stored_val = u32::from_str_radix(stored, 16).map_err(|_| {
                    malformed(format!(
                        "{}: unparseable checksum trailer {stored:?}",
                        path.display()
                    ))
                })?;
                if stored_val != computed {
                    return Err(SnapshotError::Checksum(format!(
                        "{}: stored {stored_val:08x}, computed {computed:08x} — \
                         file is corrupt or was edited",
                        path.display()
                    )));
                }
                covered
            }
            // Pre-checksum files: parse the whole text, no integrity check.
            _ => text.as_str(),
        };

        let mut lines = SnapshotLines::new(path, body);
        let header = lines.next_line("BSTREAM header")?;
        if header != "BSTREAM v1" {
            return Err(SnapshotError::UnsupportedVersion(format!(
                "{}: {}",
                path.display(),
                header
            )));
        }
        let next_height = {
            let mut toks = lines.next_line("height line")?.split_whitespace();
            if toks.next() != Some("height") {
                return Err(lines.bad("expected height line"));
            }
            parse_u64(toks.next(), "height").map_err(|m| lines.bad(m))?
        };
        // Optional shard line; absence means the trivial 1-shard layout.
        let file_shard = if lines.peek().is_some_and(|l| l.starts_with("shard ")) {
            let mut toks = lines.next_line("shard line")?.split_whitespace();
            toks.next(); // "shard"
            let index = parse_u64(toks.next(), "shard index").map_err(|m| lines.bad(m))? as u32;
            let count = parse_u64(toks.next(), "shard count").map_err(|m| lines.bad(m))? as u32;
            let hash_version =
                parse_u64(toks.next(), "shard hash version").map_err(|m| lines.bad(m))? as u32;
            if hash_version != SHARD_HASH_VERSION {
                return Err(SnapshotError::UnsupportedVersion(format!(
                    "shard hash v{hash_version} (this build implements v{SHARD_HASH_VERSION})"
                )));
            }
            if count == 0 || index >= count {
                return Err(lines.bad(format!("bad shard assignment {index}/{count}")));
            }
            Some(ShardAssignment { index, count })
        } else {
            None
        };
        match (&cfg.shard, file_shard) {
            // The snapshot knows its own layout: adopt it.
            (None, Some(shard)) => cfg.shard = Some(shard),
            (Some(want), file) => {
                let have = file.unwrap_or_else(ShardAssignment::unsharded);
                if have != *want {
                    return Err(malformed(format!(
                        "shard layout mismatch: snapshot is shard {}/{}, config wants {}/{}",
                        have.index, have.count, want.index, want.count
                    )));
                }
            }
            (None, None) => {}
        }
        let num_addresses = {
            let mut toks = lines.next_line("addresses line")?.split_whitespace();
            if toks.next() != Some("addresses") {
                return Err(lines.bad("expected addresses line"));
            }
            parse_u64(toks.next(), "address count").map_err(|m| lines.bad(m))? as usize
        };

        let mut follower = Follower::new(artifact, cfg).map_err(SnapshotError::Artifact)?;
        follower.next_height = next_height;

        for _ in 0..num_addresses {
            let mut toks = lines.next_line("A line")?.split_whitespace();
            if toks.next() != Some("A") {
                return Err(lines.bad("expected A line"));
            }
            let addr = Address(parse_u64(toks.next(), "address").map_err(|m| lines.bad(m))?);
            let label = match toks.next() {
                Some("-") => None,
                tok => {
                    let idx = parse_u64(tok, "label index").map_err(|m| lines.bad(m))? as usize;
                    Some(
                        Label::from_index(idx)
                            .ok_or_else(|| lines.bad(format!("bad label index {idx}")))?,
                    )
                }
            };
            let num_txs = parse_u64(toks.next(), "tx count").map_err(|m| lines.bad(m))? as usize;

            let mut history = Vec::with_capacity(num_txs.min(1 << 20));
            for _ in 0..num_txs {
                let mut toks = lines.next_line("T line")?.split_whitespace();
                if toks.next() != Some("T") {
                    return Err(lines.bad("expected T line"));
                }
                let txid = Txid(parse_u64(toks.next(), "txid").map_err(|m| lines.bad(m))?);
                let timestamp = parse_u64(toks.next(), "timestamp").map_err(|m| lines.bad(m))?;
                let n_in =
                    parse_u64(toks.next(), "input count").map_err(|m| lines.bad(m))? as usize;
                let n_out =
                    parse_u64(toks.next(), "output count").map_err(|m| lines.bad(m))? as usize;
                let mut inputs = Vec::with_capacity(n_in.min(1 << 16));
                for _ in 0..n_in {
                    inputs.push(
                        parse_entry(toks.next().ok_or_else(|| lines.bad("missing input"))?)
                            .map_err(|m| lines.bad(m))?,
                    );
                }
                let mut outputs = Vec::with_capacity(n_out.min(1 << 16));
                for _ in 0..n_out {
                    outputs.push(
                        parse_entry(toks.next().ok_or_else(|| lines.bad("missing output"))?)
                            .map_err(|m| lines.bad(m))?,
                    );
                }
                if toks.next().is_some() {
                    return Err(lines.bad("trailing tokens on T line"));
                }
                history.push(TxView {
                    txid,
                    timestamp,
                    inputs,
                    outputs,
                });
            }
            follower.restore_address(addr, history, label);
        }
        if lines.next_line("end of file").is_ok() {
            return Err(malformed(format!(
                "{} line {}: trailing garbage after the last address",
                path.display(),
                lines.line_no
            )));
        }
        Ok(follower)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::follower::tests::{test_artifact, test_sim};
    use btcsim::BlockCursor;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "bstream_snapshot_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn snapshot_roundtrip_preserves_state() {
        let artifact = test_artifact();
        let mut follower = Follower::new(&artifact, FollowerConfig::default()).unwrap();
        for block in BlockCursor::new(test_sim(31, 20)) {
            follower.step(&block);
        }
        let path = temp_path("roundtrip");
        follower.snapshot_to(&path).unwrap();

        let restored = Follower::restore(&artifact, FollowerConfig::default(), &path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(restored.next_height(), follower.next_height());
        assert_eq!(restored.num_tracked(), follower.num_tracked());
        assert_eq!(restored.labels(), follower.labels());
        for (addr, state) in &follower.states {
            let r = restored.states.get(addr).expect("address restored");
            assert_eq!(r.history, state.history);
            assert_eq!(r.agg, state.agg);
            assert!(!r.dirty);
        }
    }

    #[test]
    fn restored_follower_continues_like_a_continuous_run() {
        let sim = test_sim(37, 24);
        let blocks: Vec<btcsim::Block> = BlockCursor::new(sim).collect();
        let artifact = test_artifact();

        let mut continuous = Follower::new(&artifact, FollowerConfig::default()).unwrap();
        for b in &blocks {
            continuous.step(b);
        }

        let mut first_half = Follower::new(&artifact, FollowerConfig::default()).unwrap();
        for b in &blocks[..12] {
            first_half.step(b);
        }
        let path = temp_path("resume");
        first_half.snapshot_to(&path).unwrap();
        let mut resumed = Follower::restore(&artifact, FollowerConfig::default(), &path).unwrap();
        std::fs::remove_file(&path).ok();
        // Overlapping replay from genesis: heights below the checkpoint are
        // skipped, the rest are applied.
        for b in &blocks {
            resumed.step(b);
        }

        assert_eq!(resumed.labels(), continuous.labels());
        assert_eq!(resumed.next_height(), continuous.next_height());
        for (addr, state) in &continuous.states {
            assert_eq!(resumed.states.get(addr).unwrap().history, state.history);
        }
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "BSTREAM v999\nheight 0\naddresses 0\n").unwrap();
        let artifact = test_artifact();
        let err = Follower::restore(&artifact, FollowerConfig::default(), &path)
            .err()
            .expect("restore must fail");
        match err {
            SnapshotError::UnsupportedVersion(v) => {
                assert!(v.contains("BSTREAM v999"), "version in error: {v}");
                assert!(
                    v.contains(path.display().to_string().as_str()),
                    "path in error: {v}"
                );
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }

        std::fs::write(&path, "BSTREAM v1\nheight 5\naddresses 1\nA 3 - 1\n").unwrap();
        let err = Follower::restore(&artifact, FollowerConfig::default(), &path)
            .err()
            .expect("restore must fail");
        match err {
            SnapshotError::Malformed(m) => {
                assert!(m.contains(path.display().to_string().as_str()));
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bitflip_fails_the_checksum_naming_the_path() {
        let artifact = test_artifact();
        let mut follower = Follower::new(&artifact, FollowerConfig::default()).unwrap();
        for block in BlockCursor::new(test_sim(53, 15)) {
            follower.step(&block);
        }
        let path = temp_path("bitflip");
        follower.snapshot_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().next_back().unwrap().starts_with("checksum "));
        // Corrupt one digit deep inside the body (swap a '3' for a '4'
        // somewhere after the header so the file still "parses").
        let mid = text.len() / 2;
        let pos = text[mid..]
            .char_indices()
            .find(|(_, c)| c.is_ascii_digit())
            .map(|(i, _)| mid + i)
            .expect("snapshot body contains digits");
        let mut corrupted = text.into_bytes();
        corrupted[pos] = if corrupted[pos] == b'3' { b'4' } else { b'3' };
        std::fs::write(&path, &corrupted).unwrap();

        match Follower::restore(&artifact, FollowerConfig::default(), &path).err() {
            Some(SnapshotError::Checksum(m)) => {
                assert!(
                    m.contains(path.display().to_string().as_str()),
                    "path in error: {m}"
                );
            }
            other => panic!("expected Checksum, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_snapshot_without_checksum_still_restores() {
        let artifact = test_artifact();
        let mut follower = Follower::new(&artifact, FollowerConfig::default()).unwrap();
        for block in BlockCursor::new(test_sim(57, 12)) {
            follower.step(&block);
        }
        let path = temp_path("legacy");
        follower.snapshot_to(&path).unwrap();
        // Strip the trailer: what a pre-checksum build would have written.
        let text = std::fs::read_to_string(&path).unwrap();
        let stripped: String = text
            .lines()
            .filter(|l| !l.starts_with("checksum "))
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(&path, stripped).unwrap();
        let restored = Follower::restore(&artifact, FollowerConfig::default(), &path).unwrap();
        assert_eq!(restored.labels(), follower.labels());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_garbage_is_rejected_naming_path_and_line() {
        let artifact = test_artifact();
        let mut follower = Follower::new(&artifact, FollowerConfig::default()).unwrap();
        for block in BlockCursor::new(test_sim(59, 10)) {
            follower.step(&block);
        }
        let path = temp_path("garbage");
        follower.snapshot_to(&path).unwrap();
        // Splice junk between the body and the checksum line, recomputing
        // the trailer so only the garbage check can catch it.
        let text = std::fs::read_to_string(&path).unwrap();
        let body: String = text
            .lines()
            .filter(|l| !l.starts_with("checksum "))
            .map(|l| format!("{l}\n"))
            .collect();
        let with_garbage = format!("{body}this is not a snapshot line\n");
        let trailer = format!("checksum {:08x}\n", crc32(with_garbage.as_bytes()));
        std::fs::write(&path, format!("{with_garbage}{trailer}")).unwrap();

        match Follower::restore(&artifact, FollowerConfig::default(), &path).err() {
            Some(SnapshotError::Malformed(m)) => {
                assert!(m.contains("trailing garbage"), "message: {m}");
                assert!(
                    m.contains(path.display().to_string().as_str()),
                    "path in error: {m}"
                );
                assert!(m.contains("line "), "line number in error: {m}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_height_reads_just_the_header() {
        let artifact = test_artifact();
        let mut follower = Follower::new(&artifact, FollowerConfig::default()).unwrap();
        for block in BlockCursor::new(test_sim(61, 9)) {
            follower.step(&block);
        }
        let path = temp_path("height");
        follower.snapshot_to(&path).unwrap();
        assert_eq!(snapshot_height(&path).unwrap(), follower.next_height());
        std::fs::write(&path, "not a snapshot\n").unwrap();
        assert!(matches!(
            snapshot_height(&path),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_snapshot_records_and_enforces_layout() {
        let artifact = test_artifact();
        let shard = ShardAssignment { index: 1, count: 2 };
        let cfg = FollowerConfig {
            shard: Some(shard),
            ..FollowerConfig::default()
        };
        let mut follower = Follower::new(&artifact, cfg.clone()).unwrap();
        for block in BlockCursor::new(test_sim(43, 15)) {
            follower.step(&block);
        }
        let path = temp_path("sharded");
        follower.snapshot_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.lines().any(|l| l == "shard 1 2 1"),
            "snapshot must persist its shard assignment"
        );

        // Restore with the matching config.
        let same = Follower::restore(&artifact, cfg, &path).unwrap();
        assert_eq!(same.num_tracked(), follower.num_tracked());
        assert_eq!(same.config().shard, Some(shard));

        // Restore with no shard in the config: the file's layout is adopted.
        let adopted = Follower::restore(&artifact, FollowerConfig::default(), &path).unwrap();
        assert_eq!(adopted.config().shard, Some(shard));

        // Restore under a different layout is refused.
        let wrong = FollowerConfig {
            shard: Some(ShardAssignment { index: 0, count: 4 }),
            ..FollowerConfig::default()
        };
        match Follower::restore(&artifact, wrong, &path).err() {
            Some(SnapshotError::Malformed(m)) => assert!(m.contains("shard layout mismatch")),
            other => panic!("expected shard mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_shard_hash_version_is_refused() {
        let path = temp_path("hashver");
        std::fs::write(&path, "BSTREAM v1\nheight 3\nshard 0 2 99\naddresses 0\n").unwrap();
        let artifact = test_artifact();
        match Follower::restore(&artifact, FollowerConfig::default(), &path).err() {
            Some(SnapshotError::UnsupportedVersion(v)) => assert!(v.contains("shard hash v99")),
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unsharded_snapshot_restores_under_trivial_layout_only() {
        let artifact = test_artifact();
        let mut follower = Follower::new(&artifact, FollowerConfig::default()).unwrap();
        for block in BlockCursor::new(test_sim(47, 10)) {
            follower.step(&block);
        }
        let path = temp_path("trivial");
        follower.snapshot_to(&path).unwrap();
        // Explicit 1-shard config matches a file with no shard line...
        let trivial = FollowerConfig {
            shard: Some(ShardAssignment::unsharded()),
            ..FollowerConfig::default()
        };
        assert!(Follower::restore(&artifact, trivial, &path).is_ok());
        // ...but a multi-shard config does not.
        let wrong = FollowerConfig {
            shard: Some(ShardAssignment { index: 0, count: 2 }),
            ..FollowerConfig::default()
        };
        assert!(Follower::restore(&artifact, wrong, &path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_write_is_atomic() {
        let artifact = test_artifact();
        let mut follower = Follower::new(&artifact, FollowerConfig::default()).unwrap();
        for block in BlockCursor::new(test_sim(41, 10)) {
            follower.step(&block);
        }
        let path = temp_path("atomic");
        follower.snapshot_to(&path).unwrap();
        // No temp residue next to the final file.
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        assert!(!std::path::PathBuf::from(tmp_name).exists());
        assert!(path.exists());
        std::fs::remove_file(&path).ok();
    }

    /// Regression: temp naming via `with_extension("tmp")` collapsed the
    /// sibling per-shard paths `base.0of2` and `base.1of2` onto one temp
    /// file, so concurrent shard snapshots truncated and renamed it out
    /// from under each other — spurious Io errors, or one shard's bytes
    /// landing in the other shard's file (seen as a flaky
    /// `sharded_snapshot_restart_resume` failure). Temp names must be
    /// per-target. The race needs real interleaving, so this hammers a
    /// barrier-aligned snapshot loop from two threads and then checks
    /// both files restore to their own shard's assignment.
    #[test]
    fn concurrent_sibling_snapshots_do_not_collide() {
        let base = temp_path("sibling");
        let shard_path = |i: u32| {
            let mut name = base.as_os_str().to_os_string();
            name.push(format!(".{i}of2"));
            std::path::PathBuf::from(name)
        };
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
        let handles: Vec<_> = (0..2u32)
            .map(|i| {
                let path = shard_path(i);
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let artifact = test_artifact();
                    let cfg = FollowerConfig {
                        shard: Some(ShardAssignment { index: i, count: 2 }),
                        ..FollowerConfig::default()
                    };
                    let mut follower = Follower::new(&artifact, cfg).unwrap();
                    for block in BlockCursor::new(test_sim(47, 8)) {
                        follower.step(&block);
                    }
                    barrier.wait();
                    for _ in 0..25 {
                        follower.snapshot_to(&path).unwrap();
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("snapshot thread survives");
        }
        // Each file restores to its own shard's assignment and state.
        let artifact = test_artifact();
        for i in 0..2u32 {
            let restored =
                Follower::restore(&artifact, FollowerConfig::default(), &shard_path(i)).unwrap();
            assert_eq!(
                restored.config().shard,
                Some(ShardAssignment { index: i, count: 2 })
            );
            std::fs::remove_file(shard_path(i)).ok();
            // Generation files from the repeated snapshots.
            for g in 1..4 {
                let mut name = shard_path(i).into_os_string();
                name.push(format!(".g{g}"));
                std::fs::remove_file(std::path::PathBuf::from(name)).ok();
            }
        }
    }
}
