//! The bounded block channel between a chain producer and the follower,
//! with a watermark tracking how far behind the tip the consumer runs.
//!
//! Backpressure is structural: the producer thread mines lazily through a
//! [`BlockCursor`] and delivers over a bounded `sync_channel`, so when the
//! follower falls behind, `send` blocks and the producer simply stops
//! mining ahead — the feed can never buffer more than `capacity` blocks.

use btcsim::{Block, BlockCursor, SimConfig};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The upstream producer stopped delivering blocks: nothing arrived for
/// the stall window while the channel stayed open. Carries the watermark
/// evidence so the operator sees *where* the pipeline stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedStalled {
    /// Blocks the producer had delivered when the stall was declared.
    pub produced: u64,
    /// How long the producer watermark had been silent.
    pub stalled_for: Duration,
}

impl std::fmt::Display for FeedStalled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "block feed stalled: producer silent for {:?} after {} blocks",
            self.stalled_for, self.produced
        )
    }
}

impl std::error::Error for FeedStalled {}

/// Producer handle of a [`BlockFeed::manual`] feed: sends record the
/// produced watermark exactly like the internal simulation producer.
pub struct FeedSender {
    tx: SyncSender<Block>,
    watermark: Arc<Watermark>,
}

impl FeedSender {
    /// Deliver one block; `Err` when the consumer hung up. The produced
    /// watermark is stamped before the (possibly blocking) send, matching
    /// the simulation producer.
    pub fn send(&self, block: Block) -> Result<(), Block> {
        self.watermark.record_produced(block.height);
        self.tx.send(block).map_err(|mpsc::SendError(b)| b)
    }
}

/// Produced/processed progress shared between the two ends of a feed.
///
/// Counts are *blocks*, not heights: a value of `n` means blocks at heights
/// `< n` are covered. The per-stage timestamps record when each side last
/// advanced, so an operator can tell "consumer is slow" from "producer is
/// idle" even when the lag number alone is ambiguous.
pub struct Watermark {
    epoch: Instant,
    produced: AtomicU64,
    processed: AtomicU64,
    produced_at_us: AtomicU64,
    processed_at_us: AtomicU64,
}

impl Watermark {
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            produced: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            produced_at_us: AtomicU64::new(0),
            processed_at_us: AtomicU64::new(0),
        }
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// The producer delivered the block at `height`.
    pub fn record_produced(&self, height: u64) {
        self.produced.fetch_max(height + 1, Relaxed);
        self.produced_at_us.store(self.now_us(), Relaxed);
    }

    /// The consumer finished processing the block at `height`.
    pub fn record_processed(&self, height: u64) {
        self.processed.fetch_max(height + 1, Relaxed);
        self.processed_at_us.store(self.now_us(), Relaxed);
    }

    /// Blocks produced so far (tip height + 1).
    pub fn produced(&self) -> u64 {
        self.produced.load(Relaxed)
    }

    /// Blocks fully processed so far.
    pub fn processed(&self) -> u64 {
        self.processed.load(Relaxed)
    }

    /// Blocks behind the tip: produced − processed.
    pub fn lag(&self) -> u64 {
        self.produced().saturating_sub(self.processed())
    }

    /// Time since the producer last delivered a block.
    pub fn produced_age(&self) -> Duration {
        Duration::from_micros(
            self.now_us()
                .saturating_sub(self.produced_at_us.load(Relaxed)),
        )
    }

    /// Time since the consumer last finished a block.
    pub fn processed_age(&self) -> Duration {
        Duration::from_micros(
            self.now_us()
                .saturating_sub(self.processed_at_us.load(Relaxed)),
        )
    }
}

impl Default for Watermark {
    fn default() -> Self {
        Self::new()
    }
}

/// A stream of blocks in height order, backed either by a live producer
/// thread mining a simulation or by a pre-recorded block list (tests).
pub struct BlockFeed {
    rx: Option<Receiver<Block>>,
    watermark: Arc<Watermark>,
    producer: Option<JoinHandle<()>>,
}

impl BlockFeed {
    /// Follow the chain of `cfg` from height `start`, mining in a producer
    /// thread and delivering through a channel bounded at `capacity`
    /// blocks. The producer stops as soon as the feed is dropped.
    pub fn follow_sim(cfg: SimConfig, start: u64, capacity: usize) -> Self {
        let watermark = Arc::new(Watermark::new());
        let (tx, rx) = mpsc::sync_channel(capacity.max(1));
        let wm = Arc::clone(&watermark);
        let producer = std::thread::Builder::new()
            .name("bstream-producer".into())
            .spawn(move || {
                let mut cursor = BlockCursor::new(cfg);
                cursor.seek(start);
                while let Some(block) = cursor.next_block() {
                    wm.record_produced(block.height);
                    if tx.send(block).is_err() {
                        return; // consumer hung up; stop mining
                    }
                }
            })
            .expect("spawn block producer");
        Self {
            rx: Some(rx),
            watermark,
            producer: Some(producer),
        }
    }

    /// A feed over pre-recorded blocks (deterministic tests; no thread).
    pub fn from_blocks(blocks: Vec<Block>) -> Self {
        let watermark = Arc::new(Watermark::new());
        let (tx, rx) = mpsc::sync_channel(blocks.len().max(1));
        for b in blocks {
            watermark.record_produced(b.height);
            tx.send(b).expect("channel sized to hold every block");
        }
        Self {
            rx: Some(rx),
            watermark,
            producer: None,
        }
    }

    /// A feed whose producer is external code holding the returned
    /// [`FeedSender`] — the shape `bstream-follow` and tests use to model
    /// an upstream that can die or wedge.
    pub fn manual(capacity: usize) -> (FeedSender, Self) {
        let watermark = Arc::new(Watermark::new());
        let (tx, rx) = mpsc::sync_channel(capacity.max(1));
        let sender = FeedSender {
            tx,
            watermark: Arc::clone(&watermark),
        };
        (
            sender,
            Self {
                rx: Some(rx),
                watermark,
                producer: None,
            },
        )
    }

    pub fn watermark(&self) -> &Arc<Watermark> {
        &self.watermark
    }

    /// Next block, blocking; `None` once the producer is done.
    pub fn recv(&self) -> Option<Block> {
        self.rx.as_ref().and_then(|rx| rx.recv().ok())
    }

    /// Next block with a timeout (for consumers that interleave other work).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Block, RecvTimeoutError> {
        match &self.rx {
            Some(rx) => rx.recv_timeout(timeout),
            None => Err(RecvTimeoutError::Disconnected),
        }
    }

    /// Next block, waiting at most `stall_timeout`: `Ok(Some(_))` on a
    /// block, `Ok(None)` when the producer finished cleanly (channel
    /// closed), and [`FeedStalled`] when the channel is still open but
    /// nothing arrived — a dead or wedged upstream surfaces as an error
    /// instead of blocking `recv` forever.
    pub fn recv_stalled(&self, stall_timeout: Duration) -> Result<Option<Block>, FeedStalled> {
        match self.recv_timeout(stall_timeout) {
            Ok(block) => Ok(Some(block)),
            Err(RecvTimeoutError::Disconnected) => Ok(None),
            Err(RecvTimeoutError::Timeout) => Err(FeedStalled {
                produced: self.watermark.produced(),
                stalled_for: self.watermark.produced_age().max(stall_timeout),
            }),
        }
    }
}

impl Drop for BlockFeed {
    fn drop(&mut self) {
        // Unblock a producer stuck in `send`, then reap it.
        drop(self.rx.take());
        if let Some(h) = self.producer.take() {
            h.join().ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64, blocks: u64) -> SimConfig {
        SimConfig {
            blocks,
            ..SimConfig::tiny(seed)
        }
    }

    #[test]
    fn feed_delivers_full_chain_in_order() {
        let feed = BlockFeed::follow_sim(tiny(3, 20), 0, 4);
        let mut heights = Vec::new();
        while let Some(b) = feed.recv() {
            feed.watermark().record_processed(b.height);
            heights.push(b.height);
        }
        assert_eq!(heights, (0..=20).collect::<Vec<u64>>());
        assert_eq!(feed.watermark().lag(), 0);
        assert_eq!(feed.watermark().processed(), 21);
    }

    #[test]
    fn capacity_bounds_producer_runahead() {
        let feed = BlockFeed::follow_sim(tiny(5, 30), 0, 2);
        // Let the producer run into the bound, consuming nothing.
        let first = feed.recv().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // At most: 1 received + 2 buffered + 1 blocked in send.
        assert!(
            feed.watermark().produced() <= 4,
            "producer ran ahead: {}",
            feed.watermark().produced()
        );
        assert_eq!(first.height, 0);
        assert!(feed.watermark().lag() >= 1);
    }

    #[test]
    fn feed_resumes_from_start_height() {
        let all: Vec<Block> = btcsim::BlockCursor::new(tiny(7, 12)).collect();
        let feed = BlockFeed::follow_sim(tiny(7, 12), 5, 8);
        let mut got = Vec::new();
        while let Some(b) = feed.recv() {
            got.push(b);
        }
        assert_eq!(got, all[5..]);
    }

    #[test]
    fn dropping_feed_stops_producer() {
        let feed = BlockFeed::follow_sim(tiny(2, 500), 0, 1);
        feed.recv().unwrap();
        drop(feed); // must not hang on the blocked producer
    }

    #[test]
    fn from_blocks_replays_exactly() {
        let blocks: Vec<Block> = btcsim::BlockCursor::new(tiny(9, 6)).collect();
        let feed = BlockFeed::from_blocks(blocks.clone());
        let mut got = Vec::new();
        while let Some(b) = feed.recv() {
            got.push(b);
        }
        assert_eq!(got, blocks);
        assert_eq!(feed.watermark().produced(), 7);
    }

    #[test]
    fn dead_producer_surfaces_as_a_stall_not_a_hang() {
        let (sender, feed) = BlockFeed::manual(4);
        let blocks: Vec<Block> = btcsim::BlockCursor::new(tiny(11, 3)).collect();
        sender.send(blocks[0].clone()).unwrap();
        assert_eq!(
            feed.recv_stalled(Duration::from_millis(200)).unwrap(),
            Some(blocks[0].clone())
        );
        // The producer is now wedged (alive — the sender is not dropped —
        // but silent): recv_stalled must return the stall error, with the
        // watermark evidence, instead of blocking.
        let err = feed
            .recv_stalled(Duration::from_millis(30))
            .expect_err("silent producer must stall out");
        assert_eq!(err.produced, 1);
        assert!(err.stalled_for >= Duration::from_millis(30));
        assert!(err.to_string().contains("stalled"));
        // A clean EOF is not a stall.
        sender.send(blocks[1].clone()).unwrap();
        drop(sender);
        assert!(feed
            .recv_stalled(Duration::from_millis(30))
            .unwrap()
            .is_some());
        assert_eq!(feed.recv_stalled(Duration::from_millis(30)).unwrap(), None);
    }

    #[test]
    fn manual_feed_records_produced_watermark() {
        let (sender, feed) = BlockFeed::manual(8);
        for b in btcsim::BlockCursor::new(tiny(13, 5)) {
            sender.send(b).unwrap();
        }
        assert_eq!(feed.watermark().produced(), 6);
        drop(feed);
        // Consumer hung up: the next send reports it.
        let extra: Vec<Block> = btcsim::BlockCursor::new(tiny(13, 1)).collect();
        assert!(sender.send(extra[0].clone()).is_err());
    }

    #[test]
    fn watermark_stage_timestamps_advance() {
        let wm = Watermark::new();
        wm.record_produced(0);
        std::thread::sleep(Duration::from_millis(5));
        wm.record_processed(0);
        assert!(wm.produced_age() >= wm.processed_age());
        assert_eq!(wm.lag(), 0);
    }
}
