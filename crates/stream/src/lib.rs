//! # bstream — incremental chain-following ingestion with live reclassification
//!
//! The streaming counterpart to the batch pipeline: instead of extracting a
//! dataset from a finished chain and classifying it once, **bstream**
//! subscribes to blocks as they are mined and keeps a continuously updated
//! label table.
//!
//! ```text
//!  BlockCursor ──▶ BlockFeed (bounded channel) ──▶ Follower
//!  (producer          │  Watermark: produced /        │ per-address
//!   thread)           │  processed, lag, stage        │ IncrementalGraphs
//!                     ▼  timestamps                   ▼ + embed cache
//!                backpressure                  reclassify_dirty()
//!                                                     │
//!                            Engine::invalidate_address◀┘──▶ label table
//! ```
//!
//! These properties make live labels trustworthy:
//!
//! 1. **Byte-identity.** Per-address graphs are maintained by
//!    `IncrementalGraphs::apply_tx`, asserted bit-identical to the batch
//!    construction pipeline; histories are accumulated with the exact dedup
//!    rule of the chain's address index. A follower's label at the tip is
//!    the label the batch pipeline would compute from the same chain.
//! 2. **Bounded lag.** The feed's channel is bounded, so a slow follower
//!    applies backpressure to the producer instead of buffering the chain;
//!    the [`feed::Watermark`] quantifies blocks-behind-tip at any moment.
//! 3. **Durability.** [`Follower::snapshot_to`] checkpoints histories and
//!    labels atomically (rotating older generations aside);
//!    [`Follower::restore`] rebuilds all derived state and resumes from
//!    the checkpoint height.
//! 4. **Crash safety.** With a journal configured, every block is
//!    appended to a checksummed write-ahead journal *before* it is
//!    applied; [`Follower::recover`] restores the newest valid snapshot
//!    generation (quarantining corrupt ones) and replays the journal
//!    tail, yielding state byte-identical to an uninterrupted run.
//! 5. **Timely labels.** Reclassification is micro-batched: each cadence
//!    tick coalesces every flip of an address into one unit of work,
//!    orders the queue boundary-nearest-first by last label margin, and
//!    fans the batch's stale slice graphs (and then the capped embedding
//!    sequences) across `reclass_threads` deterministic replica workers —
//!    byte-identical to the per-address serial path at any thread count.
//!
//! The `bstream-follow` binary wires these together against a live
//! simulation; `stream_bench` (in the bench crate) measures throughput,
//! reclassification latency, and the incremental-vs-reconstruction
//! speedup, and `chaos_stream_bench` measures recovery time, replay
//! throughput, and blocks lost (required: zero).

pub mod feed;
pub mod follower;
pub mod journal;
pub mod metrics;
pub mod recovery;
pub mod shutdown;
pub mod snapshot;

pub use feed::{BlockFeed, FeedSender, FeedStalled, Watermark};
pub use follower::{Follower, FollowerConfig};
pub use journal::{crc32, scan_journal, BlockJournal, JournalScan, TornFrame};
pub use metrics::{BoundedSamples, StreamMetrics, SAMPLE_CAP};
pub use recovery::{generation_path, quarantine_path, Recovery};
pub use shutdown::{install_sigint_handler, request_shutdown, shutdown_requested};
pub use snapshot::{snapshot_height, SnapshotError};
