//! # bstream — incremental chain-following ingestion with live reclassification
//!
//! The streaming counterpart to the batch pipeline: instead of extracting a
//! dataset from a finished chain and classifying it once, **bstream**
//! subscribes to blocks as they are mined and keeps a continuously updated
//! label table.
//!
//! ```text
//!  BlockCursor ──▶ BlockFeed (bounded channel) ──▶ Follower
//!  (producer          │  Watermark: produced /        │ per-address
//!   thread)           │  processed, lag, stage        │ IncrementalGraphs
//!                     ▼  timestamps                   ▼ + embed cache
//!                backpressure                  reclassify_dirty()
//!                                                     │
//!                            Engine::invalidate_address◀┘──▶ label table
//! ```
//!
//! Three properties make live labels trustworthy:
//!
//! 1. **Byte-identity.** Per-address graphs are maintained by
//!    `IncrementalGraphs::apply_tx`, asserted bit-identical to the batch
//!    construction pipeline; histories are accumulated with the exact dedup
//!    rule of the chain's address index. A follower's label at the tip is
//!    the label the batch pipeline would compute from the same chain.
//! 2. **Bounded lag.** The feed's channel is bounded, so a slow follower
//!    applies backpressure to the producer instead of buffering the chain;
//!    the [`feed::Watermark`] quantifies blocks-behind-tip at any moment.
//! 3. **Durability.** [`Follower::snapshot_to`] checkpoints histories and
//!    labels atomically; [`Follower::restore`] rebuilds all derived state
//!    and resumes from the checkpoint height.
//!
//! The `bstream-follow` binary wires these together against a live
//! simulation; `stream_bench` (in the bench crate) measures throughput,
//! reclassification latency, and the incremental-vs-reconstruction speedup.

pub mod feed;
pub mod follower;
pub mod metrics;
pub mod snapshot;

pub use feed::{BlockFeed, Watermark};
pub use follower::{Follower, FollowerConfig};
pub use metrics::StreamMetrics;
pub use snapshot::SnapshotError;
