//! Follower-side streaming metrics: ingest/reclassification counters, stage
//! timing, per-address reclassification latency percentiles, and lag
//! samples. Single-threaded by design — the follower owns its metrics and
//! exposes snapshots; hand-rolled JSON like the rest of the workspace.
//!
//! Latency and lag samples live in fixed-capacity rings
//! ([`BoundedSamples`]): a follower that runs for a week records millions
//! of samples, and the old unbounded `Vec`s grew without limit. Below the
//! cap the rings hold every sample, so p50/p99 stay exact; past it they
//! keep the most recent [`SAMPLE_CAP`] — a sliding window, which is what a
//! long-running follower's percentiles should describe anyway.

use std::time::Duration;

/// How many samples each metric ring retains before it starts evicting the
/// oldest. Percentiles are exact until a series crosses this.
pub const SAMPLE_CAP: usize = 4096;

/// A fixed-capacity sample ring: records are kept in insertion order until
/// the cap, then the oldest is overwritten. Memory is bounded by the cap
/// forever.
#[derive(Clone, Debug)]
pub struct BoundedSamples {
    buf: Vec<u64>,
    /// Next overwrite slot once the ring is full — always the oldest entry.
    next: usize,
    cap: usize,
    /// Every sample ever recorded, including evicted ones.
    recorded: u64,
}

impl Default for BoundedSamples {
    fn default() -> Self {
        Self::with_cap(SAMPLE_CAP)
    }
}

impl BoundedSamples {
    pub fn with_cap(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            buf: Vec::new(),
            next: 0,
            cap,
            recorded: 0,
        }
    }

    pub fn record(&mut self, v: u64) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.next] = v;
            self.next = (self.next + 1) % self.cap;
        }
        self.recorded += 1;
    }

    /// Samples currently retained (≤ cap).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Every sample ever recorded, including ones the ring has evicted.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Retained samples in unspecified order — fine for percentiles and
    /// means, which are order-free.
    pub fn values(&self) -> &[u64] {
        &self.buf
    }

    /// Retained samples oldest-first (the ring unrolled).
    pub fn chronological(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }
}

#[derive(Clone, Debug, Default)]
pub struct StreamMetrics {
    /// Blocks ingested (applied to per-address state).
    pub blocks_ingested: u64,
    /// Transactions seen across those blocks.
    pub txs_ingested: u64,
    /// Per-address transaction applications (one tx touching k tracked
    /// addresses counts k times).
    pub tx_applications: u64,
    /// Addresses reclassified (label recomputed from dirty state).
    pub reclassifications: u64,
    /// Reclassifications whose label differed from the previous one.
    pub label_flips: u64,
    /// Dirty flips coalesced: touches of an address that was already dirty,
    /// absorbed into the one re-embed its cadence tick performs.
    pub coalesced_flips: u64,
    /// Micro-batches run by the batched reclassification stage.
    pub reclass_batches: u64,
    /// Addresses processed across those micro-batches (sum of batch sizes;
    /// divide by `reclass_batches` for the mean batch size).
    pub reclass_batch_addrs: u64,
    /// Stale slice graphs re-embedded across those micro-batches.
    pub reclass_batch_slices: u64,
    /// Eligible dirty addresses queued at the start of the most recent
    /// reclassification tick (priority-queue depth gauge).
    pub priority_depth: u64,
    /// Serve-engine cache invalidations issued.
    pub invalidations: u64,
    /// Snapshots written successfully.
    pub snapshots_written: u64,
    /// Corrupt snapshots renamed aside during recovery.
    pub snapshots_quarantined: u64,
    /// Frames appended to the write-ahead journal.
    pub journal_frames: u64,
    /// Bytes appended to the write-ahead journal.
    pub journal_bytes: u64,
    /// fsyncs issued by the journal's durability cadence.
    pub journal_fsyncs: u64,
    /// Blocks replayed from the journal tail during recovery.
    pub journal_replayed: u64,
    /// Journal appends or compactions that failed (state still applied;
    /// durability of those blocks is degraded until the next snapshot).
    pub journal_errors: u64,
    /// Wall time spent applying blocks to incremental state.
    pub ingest_time: Duration,
    /// Wall time spent re-deriving, re-embedding, and classifying.
    pub reclass_time: Duration,
    reclass_samples_us: BoundedSamples,
    lag_samples: BoundedSamples,
}

impl StreamMetrics {
    pub fn record_reclass(&mut self, elapsed: Duration) {
        self.reclassifications += 1;
        self.reclass_samples_us.record(elapsed.as_micros() as u64);
    }

    pub fn record_lag(&mut self, lag: u64) {
        self.lag_samples.record(lag);
    }

    /// One micro-batch of the batched reclassification stage finished.
    pub fn record_reclass_batch(&mut self, addrs: u64, slices: u64) {
        self.reclass_batches += 1;
        self.reclass_batch_addrs += addrs;
        self.reclass_batch_slices += slices;
    }

    /// Retained per-address reclassification latency samples (≤ [`SAMPLE_CAP`]).
    pub fn reclass_sample_len(&self) -> usize {
        self.reclass_samples_us.len()
    }

    /// Retained lag samples (≤ [`SAMPLE_CAP`]).
    pub fn lag_sample_len(&self) -> usize {
        self.lag_samples.len()
    }

    /// Per-address reclassification latency percentile (µs); 0 when empty.
    pub fn reclass_percentile_us(&self, q: f64) -> u64 {
        percentile(self.reclass_samples_us.values(), q)
    }

    /// Mean batch size (addresses) of the batched reclassification stage;
    /// 0.0 before the first batch.
    pub fn mean_batch_addrs(&self) -> f64 {
        if self.reclass_batches == 0 {
            0.0
        } else {
            self.reclass_batch_addrs as f64 / self.reclass_batches as f64
        }
    }

    /// Mean lag (blocks behind tip) over the retained samples; 0.0 when no
    /// lag was ever recorded (a `step()`-driven follower never records lag,
    /// and the JSON snapshot must stay parseable — never NaN).
    pub fn mean_lag(&self) -> f64 {
        mean(self.lag_samples.values())
    }

    /// Mean lag over the most recent half of the retained samples — the
    /// steady state, after warmup transients. 0.0 when empty (never NaN).
    pub fn steady_lag(&self) -> f64 {
        let chron = self.lag_samples.chronological();
        mean(&chron[chron.len() / 2..])
    }

    /// Ingest throughput in blocks per second of *ingest* time (excludes
    /// reclassification, which is paced separately).
    pub fn ingest_blocks_per_sec(&self) -> f64 {
        let secs = self.ingest_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.blocks_ingested as f64 / secs
        }
    }

    /// Single-line JSON, matching the serve/bench reporting idiom. Every
    /// numeric field is finite by construction (empty sample sets report 0,
    /// not NaN), so the output always parses.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"blocks_ingested\":{},\"txs_ingested\":{},",
                "\"tx_applications\":{},\"reclassifications\":{},",
                "\"label_flips\":{},\"coalesced_flips\":{},",
                "\"reclass_batches\":{},\"reclass_batch_addrs\":{},",
                "\"reclass_batch_slices\":{},\"priority_depth\":{},",
                "\"invalidations\":{},",
                "\"snapshots_written\":{},\"snapshots_quarantined\":{},",
                "\"journal_frames\":{},\"journal_bytes\":{},",
                "\"journal_fsyncs\":{},\"journal_replayed\":{},",
                "\"journal_errors\":{},\"ingest_ms\":{:.3},",
                "\"reclass_ms\":{:.3},\"ingest_blocks_per_sec\":{:.2},",
                "\"reclass_p50_us\":{},\"reclass_p99_us\":{},",
                "\"mean_lag\":{:.3},\"steady_lag\":{:.3}}}"
            ),
            self.blocks_ingested,
            self.txs_ingested,
            self.tx_applications,
            self.reclassifications,
            self.label_flips,
            self.coalesced_flips,
            self.reclass_batches,
            self.reclass_batch_addrs,
            self.reclass_batch_slices,
            self.priority_depth,
            self.invalidations,
            self.snapshots_written,
            self.snapshots_quarantined,
            self.journal_frames,
            self.journal_bytes,
            self.journal_fsyncs,
            self.journal_replayed,
            self.journal_errors,
            self.ingest_time.as_secs_f64() * 1e3,
            self.reclass_time.as_secs_f64() * 1e3,
            self.ingest_blocks_per_sec(),
            self.reclass_percentile_us(0.50),
            self.reclass_percentile_us(0.99),
            self.mean_lag(),
            self.steady_lag(),
        )
    }
}

fn mean(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<u64>() as f64 / xs.len() as f64
    }
}

/// Nearest-rank percentile of an unsorted sample set; 0 when empty.
pub fn percentile(samples: &[u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_from_known_samples() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 0.50), 50);
        assert_eq!(percentile(&samples, 0.99), 99);
        assert_eq!(percentile(&samples, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn lag_means_split_warmup_from_steady_state() {
        let mut m = StreamMetrics::default();
        for lag in [8, 6, 4, 2, 1, 1, 1, 1] {
            m.record_lag(lag);
        }
        assert!((m.mean_lag() - 3.0).abs() < 1e-9);
        assert!((m.steady_lag() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sample_rings_stay_bounded_on_long_follows() {
        // Regression: reclass/lag sample vectors used to grow without bound,
        // leaking on a week-long follow. Past the cap the rings must hold
        // exactly `SAMPLE_CAP` samples — the most recent ones.
        let mut m = StreamMetrics::default();
        let total = (SAMPLE_CAP as u64) * 3 + 17;
        for i in 0..total {
            m.record_lag(i);
            m.record_reclass(Duration::from_micros(i));
        }
        assert_eq!(m.lag_sample_len(), SAMPLE_CAP);
        assert_eq!(m.reclass_sample_len(), SAMPLE_CAP);
        assert_eq!(m.reclassifications, total);
        // The retained window is the most recent SAMPLE_CAP records.
        let min_retained = total - SAMPLE_CAP as u64;
        assert_eq!(m.reclass_percentile_us(1.0), total - 1);
        assert!(m.mean_lag() >= min_retained as f64);
    }

    #[test]
    fn ring_keeps_chronological_order_across_wraps() {
        let mut r = BoundedSamples::with_cap(4);
        for v in 0..6 {
            r.record(v);
        }
        assert_eq!(r.chronological(), vec![2, 3, 4, 5]);
        assert_eq!(r.len(), 4);
        assert_eq!(r.recorded(), 6);
    }

    #[test]
    fn percentiles_stay_exact_below_the_cap() {
        let mut m = StreamMetrics::default();
        for i in 1..=100u64 {
            m.record_reclass(Duration::from_micros(i));
        }
        assert_eq!(m.reclass_percentile_us(0.50), 50);
        assert_eq!(m.reclass_percentile_us(0.99), 99);
    }

    /// Parse one flat hand-rolled JSON object (no nesting, no strings in
    /// values), returning key → numeric value. Errors on anything a real
    /// JSON parser would reject in this grammar — in particular `NaN`.
    fn parse_flat_json(json: &str) -> Result<Vec<(String, f64)>, String> {
        let inner = json
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or("not an object")?;
        let mut out = Vec::new();
        for item in inner.split(',') {
            let (k, v) = item.split_once(':').ok_or_else(|| format!("bad {item}"))?;
            let key = k
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| format!("unquoted key {k}"))?;
            // JSON numbers: optional minus, digits, optional fraction. NaN
            // and infinity are not JSON.
            if !v
                .chars()
                .all(|c| c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+')
            {
                return Err(format!("non-numeric value {v} for {key}"));
            }
            let value: f64 = v.parse().map_err(|_| format!("bad number {v}"))?;
            if !value.is_finite() {
                return Err(format!("non-finite value for {key}"));
            }
            out.push((key.to_string(), value));
        }
        Ok(out)
    }

    #[test]
    fn empty_metrics_json_is_parseable() {
        // Regression: a `step()`-driven follower records no lag samples;
        // the snapshot must report 0.0, never NaN (which is not JSON).
        let m = StreamMetrics::default();
        assert_eq!(m.mean_lag(), 0.0);
        assert_eq!(m.steady_lag(), 0.0);
        let json = m.to_json();
        assert!(!json.contains("NaN") && !json.contains("inf"));
        let fields = parse_flat_json(&json).expect("empty-metrics JSON must parse");
        for (key, value) in &fields {
            assert_eq!(*value, 0.0, "{key} must be zero on empty metrics");
        }
        assert!(fields.iter().any(|(k, _)| k == "mean_lag"));
        assert!(fields.iter().any(|(k, _)| k == "steady_lag"));
    }

    #[test]
    fn json_is_well_formed() {
        let mut m = StreamMetrics {
            blocks_ingested: 10,
            ..StreamMetrics::default()
        };
        m.record_reclass(Duration::from_micros(120));
        m.record_lag(2);
        m.record_reclass_batch(1, 3);
        let json = m.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"blocks_ingested\":10"));
        assert!(json.contains("\"reclass_p99_us\":120"));
        assert!(json.contains("\"reclass_batches\":1"));
        assert!(json.contains("\"reclass_batch_slices\":3"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        parse_flat_json(&json).expect("metrics JSON must parse");
    }

    #[test]
    fn batch_means_guard_against_zero_batches() {
        let mut m = StreamMetrics::default();
        assert_eq!(m.mean_batch_addrs(), 0.0);
        m.record_reclass_batch(4, 6);
        m.record_reclass_batch(2, 2);
        assert!((m.mean_batch_addrs() - 3.0).abs() < 1e-9);
    }
}
