//! Follower-side streaming metrics: ingest/reclassification counters, stage
//! timing, per-address reclassification latency percentiles, and lag
//! samples. Single-threaded by design — the follower owns its metrics and
//! exposes snapshots; hand-rolled JSON like the rest of the workspace.

use std::time::Duration;

#[derive(Clone, Debug, Default)]
pub struct StreamMetrics {
    /// Blocks ingested (applied to per-address state).
    pub blocks_ingested: u64,
    /// Transactions seen across those blocks.
    pub txs_ingested: u64,
    /// Per-address transaction applications (one tx touching k tracked
    /// addresses counts k times).
    pub tx_applications: u64,
    /// Addresses reclassified (label recomputed from dirty state).
    pub reclassifications: u64,
    /// Reclassifications whose label differed from the previous one.
    pub label_flips: u64,
    /// Serve-engine cache invalidations issued.
    pub invalidations: u64,
    /// Snapshots written successfully.
    pub snapshots_written: u64,
    /// Corrupt snapshots renamed aside during recovery.
    pub snapshots_quarantined: u64,
    /// Frames appended to the write-ahead journal.
    pub journal_frames: u64,
    /// Bytes appended to the write-ahead journal.
    pub journal_bytes: u64,
    /// fsyncs issued by the journal's durability cadence.
    pub journal_fsyncs: u64,
    /// Blocks replayed from the journal tail during recovery.
    pub journal_replayed: u64,
    /// Journal appends or compactions that failed (state still applied;
    /// durability of those blocks is degraded until the next snapshot).
    pub journal_errors: u64,
    /// Wall time spent applying blocks to incremental state.
    pub ingest_time: Duration,
    /// Wall time spent re-deriving, re-embedding, and classifying.
    pub reclass_time: Duration,
    reclass_samples_us: Vec<u64>,
    lag_samples: Vec<u64>,
}

impl StreamMetrics {
    pub fn record_reclass(&mut self, elapsed: Duration) {
        self.reclassifications += 1;
        self.reclass_samples_us.push(elapsed.as_micros() as u64);
    }

    pub fn record_lag(&mut self, lag: u64) {
        self.lag_samples.push(lag);
    }

    /// Per-address reclassification latency percentile (µs); 0 when empty.
    pub fn reclass_percentile_us(&self, q: f64) -> u64 {
        percentile(&self.reclass_samples_us, q)
    }

    /// Mean lag (blocks behind tip) over every sample.
    pub fn mean_lag(&self) -> f64 {
        mean(&self.lag_samples)
    }

    /// Mean lag over the last half of the samples — the steady state, after
    /// warmup transients.
    pub fn steady_lag(&self) -> f64 {
        mean(&self.lag_samples[self.lag_samples.len() / 2..])
    }

    /// Ingest throughput in blocks per second of *ingest* time (excludes
    /// reclassification, which is paced separately).
    pub fn ingest_blocks_per_sec(&self) -> f64 {
        let secs = self.ingest_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.blocks_ingested as f64 / secs
        }
    }

    /// Single-line JSON, matching the serve/bench reporting idiom.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"blocks_ingested\":{},\"txs_ingested\":{},",
                "\"tx_applications\":{},\"reclassifications\":{},",
                "\"label_flips\":{},\"invalidations\":{},",
                "\"snapshots_written\":{},\"snapshots_quarantined\":{},",
                "\"journal_frames\":{},\"journal_bytes\":{},",
                "\"journal_fsyncs\":{},\"journal_replayed\":{},",
                "\"journal_errors\":{},\"ingest_ms\":{:.3},",
                "\"reclass_ms\":{:.3},\"ingest_blocks_per_sec\":{:.2},",
                "\"reclass_p50_us\":{},\"reclass_p99_us\":{},",
                "\"mean_lag\":{:.3},\"steady_lag\":{:.3}}}"
            ),
            self.blocks_ingested,
            self.txs_ingested,
            self.tx_applications,
            self.reclassifications,
            self.label_flips,
            self.invalidations,
            self.snapshots_written,
            self.snapshots_quarantined,
            self.journal_frames,
            self.journal_bytes,
            self.journal_fsyncs,
            self.journal_replayed,
            self.journal_errors,
            self.ingest_time.as_secs_f64() * 1e3,
            self.reclass_time.as_secs_f64() * 1e3,
            self.ingest_blocks_per_sec(),
            self.reclass_percentile_us(0.50),
            self.reclass_percentile_us(0.99),
            self.mean_lag(),
            self.steady_lag(),
        )
    }
}

fn mean(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<u64>() as f64 / xs.len() as f64
    }
}

/// Nearest-rank percentile of an unsorted sample set; 0 when empty.
pub fn percentile(samples: &[u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_from_known_samples() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 0.50), 50);
        assert_eq!(percentile(&samples, 0.99), 99);
        assert_eq!(percentile(&samples, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn lag_means_split_warmup_from_steady_state() {
        let mut m = StreamMetrics::default();
        for lag in [8, 6, 4, 2, 1, 1, 1, 1] {
            m.record_lag(lag);
        }
        assert!((m.mean_lag() - 3.0).abs() < 1e-9);
        assert!((m.steady_lag() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn json_is_well_formed() {
        let mut m = StreamMetrics {
            blocks_ingested: 10,
            ..StreamMetrics::default()
        };
        m.record_reclass(Duration::from_micros(120));
        m.record_lag(2);
        let json = m.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"blocks_ingested\":10"));
        assert!(json.contains("\"reclass_p99_us\":120"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
